/**
 * @file
 * SIMD kernel layer: every available backend must be byte-exact
 * against the scalar reference on awkward shapes (lengths off the
 * vector width, width-1 rows, all-zero and dense operands), and the
 * occupancy extractors must agree with a brute-force reading of the
 * matrix — including when K is not a multiple of k0, so the tile's
 * flat-k axis overhangs the matrix and pads with zeros.
 *
 * These tests are what lets the schedulers trust the masks blindly:
 * the e2e byte-diff (tests/simd_dispatch.cmake) pins whole-run
 * equality, this file pins it kernel by kernel at the edges.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "simd/occupancy.hh"
#include "tensor/matrix.hh"

namespace griffin {
namespace {

using simd::KernelTable;

/** Backends present in this build/CPU, scalar reference first. */
std::vector<std::pair<std::string, const KernelTable *>>
availableBackends()
{
    std::vector<std::pair<std::string, const KernelTable *>> tables;
    tables.push_back({"scalar", &simd::scalarKernels()});
    if (simd::avx2Kernels() != nullptr)
        tables.push_back({"avx2", simd::avx2Kernels()});
    if (simd::neonKernels() != nullptr)
        tables.push_back({"neon", simd::neonKernels()});
    return tables;
}

std::vector<std::int8_t>
randomBytes(Rng &rng, std::size_t len, double density)
{
    std::vector<std::int8_t> out(len, 0);
    for (auto &v : out)
        if (rng.bernoulli(density))
            v = rng.nonzeroInt8();
    return out;
}

TEST(SimdKernels, NonzeroMasksMatchScalarOnAllWidths)
{
    Rng rng(101);
    const std::size_t stride = 67; // off any vector width
    const std::int64_t groups = 9;
    const auto bytes = randomBytes(rng, stride * groups + 64, 0.4);
    const auto &scalar = simd::scalarKernels();
    for (const auto &[name, table] : availableBackends()) {
        for (int width = 1; width <= 64; ++width) {
            std::vector<std::uint64_t> want(groups, ~0ull);
            std::vector<std::uint64_t> got(groups, ~0ull);
            scalar.nonzeroMasks(bytes.data(), stride, width, groups,
                                want.data());
            table->nonzeroMasks(bytes.data(), stride, width, groups,
                                got.data());
            EXPECT_EQ(want, got)
                << name << " diverges at width " << width;
        }
    }
}

TEST(SimdKernels, CountAndAccumulateMatchScalarOffVectorWidths)
{
    Rng rng(202);
    // Lengths straddling the 16- and 32-byte vector widths, plus the
    // degenerate 0/1 cases.
    const std::size_t lengths[] = {0,  1,  15, 16, 17, 31,
                                   32, 33, 63, 64, 65, 1000};
    for (const std::size_t len : lengths) {
        const auto bytes = randomBytes(rng, len, 0.5);
        const auto &scalar = simd::scalarKernels();
        for (const auto &[name, table] : availableBackends()) {
            EXPECT_EQ(table->countNonzero(bytes.data(), len),
                      scalar.countNonzero(bytes.data(), len))
                << name << " count diverges at len " << len;
            std::vector<std::int32_t> want(len + 1, 7);
            std::vector<std::int32_t> got(len + 1, 7);
            scalar.accumulateNonzero(bytes.data(), len, want.data());
            table->accumulateNonzero(bytes.data(), len, got.data());
            EXPECT_EQ(want, got)
                << name << " accumulate diverges at len " << len;
        }
    }
}

TEST(SimdKernels, LeMaskMatchesScalarAndClearsHighBits)
{
    Rng rng(303);
    const std::int64_t sizes[] = {1, 3, 4, 5, 63, 64, 65, 130};
    for (const std::int64_t n : sizes) {
        std::vector<std::int64_t> heads(n);
        for (auto &h : heads)
            h = rng.uniformInt(0, 100);
        const std::int64_t horizon = 50;
        const auto &scalar = simd::scalarKernels();
        const std::int64_t words = (n + 63) / 64;
        for (const auto &[name, table] : availableBackends()) {
            std::vector<std::uint64_t> want(words, ~0ull);
            std::vector<std::uint64_t> got(words, ~0ull);
            scalar.leMask(heads.data(), n, horizon, want.data());
            table->leMask(heads.data(), n, horizon, got.data());
            EXPECT_EQ(want, got)
                << name << " leMask diverges at n " << n;
            // Bits at and above n must be zero, not stale garbage —
            // the schedulers popcount whole words.
            if (n % 64 != 0)
                EXPECT_EQ(got[words - 1] >> (n % 64), 0u)
                    << name << " left stale high bits at n " << n;
        }
    }
}

TEST(SimdKernels, MinI64MatchesScalarIncludingEmpty)
{
    Rng rng(404);
    for (const auto &[name, table] : availableBackends()) {
        EXPECT_EQ(table->minI64(nullptr, 0),
                  std::numeric_limits<std::int64_t>::max())
            << name;
        for (const std::int64_t n : {1, 2, 3, 4, 5, 7, 64, 129}) {
            std::vector<std::int64_t> heads(n);
            for (auto &h : heads)
                h = rng.uniformInt(-1000, 1000);
            EXPECT_EQ(table->minI64(heads.data(), n),
                      simd::scalarKernels().minI64(heads.data(), n))
                << name << " min diverges at n " << n;
        }
    }
}

TEST(SimdKernels, MtTemperMatchesScalarOffVectorWidths)
{
    Rng rng(505);
    for (const std::int64_t n : {0, 1, 2, 3, 4, 5, 311, 312}) {
        std::vector<std::uint64_t> raw(n);
        for (auto &w : raw)
            w = static_cast<std::uint64_t>(
                    rng.uniformInt(0, 1 << 30)) *
                    0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(rng.uniformInt(0, 255));
        const auto &scalar = simd::scalarKernels();
        for (const auto &[name, table] : availableBackends()) {
            std::vector<std::uint64_t> want(n), got(n);
            scalar.mtTemper(raw.data(), n, want.data());
            table->mtTemper(raw.data(), n, got.data());
            EXPECT_EQ(want, got)
                << name << " temper diverges at n " << n;
        }
    }
}

// ---- occupancy extraction vs brute force ----------------------------

MatrixI8
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols,
             double density)
{
    MatrixI8 m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            if (rng.bernoulli(density))
                m.at(r, c) = rng.nonzeroInt8();
    return m;
}

std::vector<std::uint64_t>
bruteB(const MatrixI8 &b, std::int64_t col_base, int units,
       std::int64_t steps, int k0)
{
    std::vector<std::uint64_t> out(steps * k0, 0);
    for (std::int64_t f = 0; f < steps * k0; ++f)
        for (int n = 0; n < units; ++n) {
            const std::size_t r = static_cast<std::size_t>(f);
            const std::size_t c =
                static_cast<std::size_t>(col_base + n);
            if (r < b.rows() && c < b.cols() && b.at(r, c) != 0)
                out[f] |= std::uint64_t{1} << n;
        }
    return out;
}

std::vector<std::uint64_t>
bruteA(const MatrixI8 &a, std::int64_t row_base, int units,
       std::int64_t steps, int k0)
{
    std::vector<std::uint64_t> out(steps * k0, 0);
    for (std::int64_t f = 0; f < steps * k0; ++f)
        for (int m = 0; m < units; ++m) {
            const std::size_t r =
                static_cast<std::size_t>(row_base + m);
            const std::size_t c = static_cast<std::size_t>(f);
            if (r < a.rows() && c < a.cols() && a.at(r, c) != 0)
                out[f] |= std::uint64_t{1} << m;
        }
    return out;
}

TEST(SimdOccupancy, BTileMatchesBruteForceWhenKOverhangsK0)
{
    Rng rng(606);
    // K = 13 rows with k0 = 4, steps = 4: flat-k 16 overhangs the
    // matrix by 3 positions, which must read as zero padding.
    const MatrixI8 b = randomMatrix(rng, 13, 21, 0.5);
    for (const std::int64_t col_base : {0, 8, 16, 24}) {
        std::vector<std::uint64_t> got(16, ~0ull);
        simd::bTileOccupancy(b, col_base, 8, 4, 4, got.data());
        EXPECT_EQ(got, bruteB(b, col_base, 8, 4, 4))
            << "col_base " << col_base;
    }
}

TEST(SimdOccupancy, ATileMatchesBruteForceWhenKOverhangsK0)
{
    Rng rng(707);
    const MatrixI8 a = randomMatrix(rng, 21, 13, 0.5);
    for (const std::int64_t row_base : {0, 8, 16}) {
        std::vector<std::uint64_t> got(16, ~0ull);
        simd::aTileOccupancy(a, row_base, 8, 4, 4, got.data());
        EXPECT_EQ(got, bruteA(a, row_base, 8, 4, 4))
            << "row_base " << row_base;
    }
}

TEST(SimdOccupancy, AllZeroAndDenseExtremes)
{
    Rng rng(808);
    const MatrixI8 zero(17, 9);
    const MatrixI8 dense = randomMatrix(rng, 17, 9, 1.0);
    std::vector<std::uint64_t> got(20, ~0ull);

    simd::bTileOccupancy(zero, 0, 9, 5, 4, got.data());
    EXPECT_EQ(got, std::vector<std::uint64_t>(20, 0));
    simd::bTileOccupancy(dense, 0, 9, 5, 4, got.data());
    EXPECT_EQ(got, bruteB(dense, 0, 9, 5, 4));

    got.assign(9, ~0ull);
    simd::aTileOccupancy(zero, 0, 17, 3, 3, got.data());
    EXPECT_EQ(got, std::vector<std::uint64_t>(9, 0));
    got.assign(9, ~0ull);
    simd::aTileOccupancy(dense, 0, 17, 3, 3, got.data());
    EXPECT_EQ(got, bruteA(dense, 0, 17, 3, 3));
}

TEST(SimdOccupancy, SingleElementMatrix)
{
    MatrixI8 one(1, 1);
    one.at(0, 0) = -3;
    std::vector<std::uint64_t> got(4, ~0ull);
    simd::bTileOccupancy(one, 0, 1, 2, 2, got.data());
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 0, 0, 0}));
    got.assign(4, ~0ull);
    simd::aTileOccupancy(one, 0, 1, 2, 2, got.data());
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 0, 0, 0}));

    MatrixI8 zero(1, 1);
    got.assign(4, ~0ull);
    simd::bTileOccupancy(zero, 0, 1, 2, 2, got.data());
    EXPECT_EQ(got, std::vector<std::uint64_t>(4, 0));
}

TEST(SimdDispatch, ActiveBackendHasAStableName)
{
    const std::string name =
        simd::backendName(simd::activeBackend());
    EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon")
        << name;
    // The dispatched table is one of the concrete tables, never a
    // mixture assembled per call.
    const KernelTable &active = simd::kernels();
    EXPECT_NE(active.nonzeroMasks, nullptr);
    EXPECT_NE(active.mtTemper, nullptr);
}

} // namespace
} // namespace griffin
