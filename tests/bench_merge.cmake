# CTest script: the acceptance bar for post-hoc shard merging.  One
# experiment, narrowed by --grid, runs (a) unsharded (reference tables
# + .jsonl) and (b) as three --grid-shard slices; then
#   griffin_bench merge shard0 shard1 shard2
# must render byte-identical tables to the unsharded run and rewrite a
# byte-identical merged row document, while incomplete or duplicated
# shard sets must fail with a coverage diagnostic.  Also pins the
# nearest-name suggestions for unknown experiments and subcommands.
#
# Invoked as:
#   cmake -DGRIFFIN_BENCH=<path> -DWORK_DIR=<dir> -P bench_merge.cmake

if(NOT GRIFFIN_BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DGRIFFIN_BENCH=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(grid "network=alexnet,googlenet")
set(common_args run fig6 --grid "${grid}" --sample 0.02 --rowcap 8
    --threads 2)

# (a) the unsharded reference.
execute_process(
    COMMAND "${GRIFFIN_BENCH}" ${common_args}
            --out "${WORK_DIR}/full.jsonl"
    OUTPUT_VARIABLE full_tables ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "unsharded run failed (${rc}):\n${err}")
endif()

# (b) three shard slices.
foreach(shard 0 1 2)
    execute_process(
        COMMAND "${GRIFFIN_BENCH}" ${common_args} --grid-shard ${shard}/3
                --out "${WORK_DIR}/shard${shard}.jsonl"
        OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "shard ${shard}/3 failed (${rc}):\n${err}")
    endif()
endforeach()

# Merge renders the tables the shards could not.
execute_process(
    COMMAND "${GRIFFIN_BENCH}" merge
            "${WORK_DIR}/shard0.jsonl" "${WORK_DIR}/shard1.jsonl"
            "${WORK_DIR}/shard2.jsonl"
            --grid "${grid}" --out "${WORK_DIR}/merged.jsonl"
    OUTPUT_VARIABLE merge_tables ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "merge failed (${rc}):\n${err}")
endif()
if(NOT merge_tables STREQUAL full_tables)
    message(FATAL_ERROR
            "merged tables differ from the unsharded run's:\n"
            "${merge_tables}")
endif()
file(READ "${WORK_DIR}/full.jsonl" full_doc)
file(READ "${WORK_DIR}/merged.jsonl" merged_doc)
if(NOT merged_doc STREQUAL full_doc)
    message(FATAL_ERROR
            "merged .jsonl differs from the unsharded document")
endif()

# Coverage violations must fail loudly: a missing shard...
execute_process(
    COMMAND "${GRIFFIN_BENCH}" merge
            "${WORK_DIR}/shard0.jsonl" "${WORK_DIR}/shard2.jsonl"
            --grid "${grid}"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0 OR NOT err MATCHES "missing, duplicated")
    message(FATAL_ERROR
            "merge accepted an incomplete shard set (${rc}):\n${err}")
endif()
# ...a duplicated shard...
execute_process(
    COMMAND "${GRIFFIN_BENCH}" merge
            "${WORK_DIR}/shard0.jsonl" "${WORK_DIR}/shard0.jsonl"
            "${WORK_DIR}/shard1.jsonl" "${WORK_DIR}/shard2.jsonl"
            --grid "${grid}"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "merge accepted a duplicated shard")
endif()
# ...and shards merged without the fleet's --grid override.
execute_process(
    COMMAND "${GRIFFIN_BENCH}" merge
            "${WORK_DIR}/shard0.jsonl" "${WORK_DIR}/shard1.jsonl"
            "${WORK_DIR}/shard2.jsonl"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "merge accepted shards without their --grid")
endif()

# Unknown names suggest the nearest registered spelling.
execute_process(
    COMMAND "${GRIFFIN_BENCH}" describe fig55
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0 OR NOT err MATCHES "did you mean 'fig5'")
    message(FATAL_ERROR
            "describe fig55 did not suggest fig5 (${rc}):\n${err}")
endif()
execute_process(
    COMMAND "${GRIFFIN_BENCH}" run tabel4
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0 OR NOT err MATCHES "did you mean 'table4'")
    message(FATAL_ERROR
            "run tabel4 did not suggest table4 (${rc}):\n${err}")
endif()
execute_process(
    COMMAND "${GRIFFIN_BENCH}" mrege
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0 OR NOT err MATCHES "did you mean 'merge'")
    message(FATAL_ERROR
            "unknown subcommand did not suggest merge (${rc}):\n${err}")
endif()

message(STATUS
        "merge OK: post-hoc tables and rows identical, coverage "
        "violations rejected, suggestions in place")
