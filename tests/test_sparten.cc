/**
 * @file
 * Tests for the SparTen-style MAC-grid simulator.
 */

#include <gtest/gtest.h>

#include "arch/presets.hh"
#include "baselines/sparten.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

MatrixI8
mk(std::int64_t r, std::int64_t c, double sp, std::uint64_t seed)
{
    Rng rng(seed);
    return randomSparse(static_cast<std::size_t>(r),
                        static_cast<std::size_t>(c), sp, rng);
}

TEST(SparTen, DenseWorkRunsNearVectorParity)
{
    auto a = mk(64, 256, 0.0, 1);
    auto b = mk(256, 64, 0.0, 2);
    auto r = simulateSparTen(a, b, sparTenAB(), DnnCategory::Dense);
    // Perfect balancing: M*N*K / 1024 plus per-output overhead.
    const std::int64_t ideal = 64 * 64 * 256 / 1024;
    EXPECT_GE(r.computeCycles, ideal);
    EXPECT_LE(r.computeCycles, ideal + ideal / 4);
}

TEST(SparTen, NearIdealDualSparseSpeedup)
{
    // SparTen's strength: speedup tracks 1/density closely since each
    // MAC executes exactly the effectual pairs.
    auto a = mk(64, 512, 0.5, 3);
    auto b = mk(512, 64, 0.8, 4);
    auto r = simulateSparTen(a, b, sparTenAB(), DnnCategory::AB);
    const double density = 0.5 * 0.2;
    const double ideal = 1.0 / density;
    const double speedup = static_cast<double>(r.denseCycles) /
                           static_cast<double>(r.computeCycles);
    EXPECT_GT(speedup, 0.5 * ideal);
    EXPECT_LE(speedup, 1.1 * ideal);
}

TEST(SparTen, SingleSidedVariantsSkipOnlyTheirSide)
{
    auto a = mk(64, 512, 0.5, 5);
    auto b = mk(512, 64, 0.8, 6);
    auto ab = simulateSparTen(a, b, sparTenAB(), DnnCategory::AB);
    auto only_b = simulateSparTen(a, b, sparTenB(), DnnCategory::AB);
    auto only_a = simulateSparTen(a, b, sparTenA(), DnnCategory::AB);
    EXPECT_LT(ab.computeCycles, only_b.computeCycles);
    EXPECT_LT(ab.computeCycles, only_a.computeCycles);
    // B is sparser than A here, so skipping B wins.
    EXPECT_LT(only_b.computeCycles, only_a.computeCycles);
}

TEST(SparTen, EffectualOpsMatchExactCount)
{
    auto a = mk(16, 64, 0.6, 7);
    auto b = mk(64, 16, 0.7, 8);
    auto r = simulateSparTen(a, b, sparTenAB(), DnnCategory::AB);
    std::int64_t expected = 0;
    for (std::size_t m = 0; m < a.rows(); ++m)
        for (std::size_t n = 0; n < b.cols(); ++n)
            for (std::size_t k = 0; k < a.cols(); ++k)
                expected += a.at(m, k) != 0 && b.at(k, n) != 0;
    EXPECT_EQ(r.effectualOps, expected);
}

TEST(SparTen, DramCarriesBitmaskMetadata)
{
    auto a = mk(32, 256, 0.5, 9);
    auto b = mk(256, 32, 0.9, 10);
    auto r = simulateSparTen(a, b, sparTenAB(), DnnCategory::AB);
    const auto nnz_a = static_cast<std::int64_t>(a.nnz());
    const auto nnz_b = static_cast<std::int64_t>(b.nnz());
    EXPECT_EQ(r.dramBytes, nnz_a + 32 * 256 / 8 + nnz_b +
                               256 * 32 / 8 + 32 * 32);
}

TEST(SparTen, ImbalancedColumnsHurtLoadBalancing)
{
    // One dense output column among empty ones: the per-output
    // assignment cannot split a single heavy output across MACs.
    MatrixI8 a = mk(4, 4096, 0.0, 11);
    MatrixI8 b(4096, 64);
    for (std::size_t k = 0; k < 4096; ++k)
        b.at(k, 0) = 1; // only column 0 has work
    auto r = simulateSparTen(a, b, sparTenAB(), DnnCategory::AB);
    // 4 outputs x 4096 pairs each, on 1024 MACs: bounded below by one
    // whole output per MAC.
    EXPECT_GE(r.computeCycles, 4096);
}

TEST(SparTenDeathTest, VectorCoreConfigRejected)
{
    auto a = mk(8, 32, 0.0, 12);
    auto b = mk(32, 8, 0.0, 13);
    EXPECT_EXIT(simulateSparTen(a, b, griffinArch(), DnnCategory::AB),
                testing::ExitedWithCode(exitUsageError), "MacGrid");
}

} // namespace
} // namespace griffin
