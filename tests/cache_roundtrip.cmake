# CTest script: run bench_runner twice with the same --cache-file and
# assert (a) the second run's --json results document is byte-identical
# to the first (cache persistence must never change results) and
# (b) the second run reports load_hits > 0 (the cache file actually
# skipped B-side preprocessing).
#
# Invoked as:
#   cmake -DBENCH_RUNNER=<path> -DWORK_DIR=<dir> -P cache_roundtrip.cmake

if(NOT BENCH_RUNNER OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DBENCH_RUNNER=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args
    --archs Sparse.B* --networks alexnet --cats b
    --threads 2 --layer-shard
    --sample 0.02 --rowcap 32
    --cache-file "${WORK_DIR}/sweep.grfc")

execute_process(
    COMMAND "${BENCH_RUNNER}" ${common_args} --json "${WORK_DIR}/run1.json"
    OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "first bench_runner run failed (${rc1}):\n${err1}")
endif()

execute_process(
    COMMAND "${BENCH_RUNNER}" ${common_args} --json "${WORK_DIR}/run2.json"
    OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "second bench_runner run failed (${rc2}):\n${err2}")
endif()

# (a) byte-identical results documents.
file(READ "${WORK_DIR}/run1.json" doc1)
file(READ "${WORK_DIR}/run2.json" doc2)
if(NOT doc1 STREQUAL doc2)
    message(FATAL_ERROR "cached re-run changed the results JSON")
endif()
string(LENGTH "${doc1}" doc1_len)
if(doc1_len EQUAL 0)
    message(FATAL_ERROR "results JSON is empty")
endif()

# (b) the first run must not have load hits; the second must.
if(out1 MATCHES "\"load_hits\": [1-9]")
    message(FATAL_ERROR "first (cold) run reported load hits:\n${out1}")
endif()
if(NOT out2 MATCHES "\"load_hits\": [1-9]")
    message(FATAL_ERROR
            "second run reported no load hits — the cache file did not "
            "serve any preprocessing:\n${out2}")
endif()

message(STATUS "cache round-trip OK: identical results, warm load hits")
