/**
 * @file
 * Tests for the dataflow-DAG sequential scheduler: structural
 * validation, the liveness evaluator, the peak-minimising optimizer,
 * and the schedule-aware accelerator plumbing.
 */

#include <gtest/gtest.h>

#include "arch/presets.hh"
#include "griffin/accelerator.hh"
#include "sched/dag_schedule.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

/** A layer whose default output buffer is exactly `bytes`. */
LayerSpec
buffer(const std::string &name, std::int64_t bytes)
{
    LayerSpec layer;
    layer.name = name;
    layer.m = bytes;
    return layer;
}

/** A -> (B, C) -> D with pinned buffer sizes. */
NetworkSpec
diamond()
{
    NetworkSpec net;
    net.name = "diamond";
    const auto a = net.addLayer(buffer("a", 100), {});
    const auto b = net.addLayer(buffer("b", 40), {a});
    const auto c = net.addLayer(buffer("c", 30), {a});
    net.addLayer(buffer("d", 10), {b, c});
    return net;
}

TEST(DagSchedule, ValidateRejectsCycles)
{
    NetworkSpec net;
    net.name = "looped";
    net.addLayer(buffer("a", 1), {});
    net.addLayer(buffer("b", 1), {0});
    net.nodes[0].inputs = {1};
    EXPECT_DEATH(validateDag(net), "dependence cycle");
}

TEST(DagSchedule, ValidateRejectsDanglingAndDuplicateEdges)
{
    NetworkSpec dangling;
    dangling.name = "dangling";
    dangling.addLayer(buffer("a", 1), {});
    dangling.nodes[0].inputs = {7};
    EXPECT_DEATH(validateDag(dangling), "has only");

    NetworkSpec duplicated;
    duplicated.name = "duplicated";
    duplicated.addLayer(buffer("a", 1), {});
    duplicated.addLayer(buffer("b", 1), {0});
    duplicated.nodes[1].inputs = {0, 0};
    EXPECT_DEATH(validateDag(duplicated), "twice");
}

TEST(DagSchedule, AddLayerRejectsForwardEdges)
{
    NetworkSpec net;
    net.name = "forward";
    EXPECT_DEATH(net.addLayer(buffer("a", 1), {0}),
                 "not an earlier node");
}

TEST(DagSchedule, DiamondLivenessIsPinned)
{
    const auto net = diamond();
    const auto decl = declarationSchedule(net);
    // a:100; b:+40; c:+30 then a frees; d: 40+30+10.
    ASSERT_EQ(decl.entryLiveBytes.size(), 4u);
    EXPECT_EQ(decl.entryLiveBytes[0], 100);
    EXPECT_EQ(decl.entryLiveBytes[1], 140);
    EXPECT_EQ(decl.entryLiveBytes[2], 170);
    EXPECT_EQ(decl.entryLiveBytes[3], 80);
    EXPECT_EQ(decl.peakBytes, 170);
    EXPECT_EQ(calculateSequentialPeak(net, decl.entries), 170);
}

TEST(DagSchedule, EvaluatorRejectsMalformedSchedules)
{
    const auto net = diamond();
    // Consumption before production.
    auto eval = evaluateSchedule(net, {{1, false}, {0, false}});
    EXPECT_FALSE(eval.ok);
    // First production flagged as recompute.
    eval = evaluateSchedule(net, {{0, true}});
    EXPECT_FALSE(eval.ok);
    // Re-production without the recompute flag.
    eval = evaluateSchedule(
        net, {{0, false}, {0, false}, {1, false}, {2, false}, {3, false}});
    EXPECT_FALSE(eval.ok);
    // A node never produced.
    eval = evaluateSchedule(net, {{0, false}, {1, false}, {2, false}});
    EXPECT_FALSE(eval.ok);
}

TEST(DagSchedule, OptimizerNeverWorseAcrossTheSuite)
{
    for (const auto &net : benchmarkSuite()) {
        const auto decl = declarationSchedule(net);
        const auto opt = optimizeSchedule(net, /*allowRecompute=*/false);
        EXPECT_LE(opt.peakBytes, decl.peakBytes) << net.name;
        // The optimizer's claimed peak reprices to the same number.
        EXPECT_EQ(calculateSequentialPeak(net, opt.entries),
                  opt.peakBytes)
            << net.name;
        const auto rec = optimizeSchedule(net, /*allowRecompute=*/true);
        EXPECT_LE(rec.peakBytes, opt.peakBytes) << net.name;
    }
}

TEST(DagSchedule, OptimizerStrictlyImprovesBranchingNetworks)
{
    // The inception modules hold the concatenated block input live
    // while branches execute; reordering releases it earlier.  These
    // peaks pin the buffer-byte conventions in the two builders.
    const auto googlenet = networkByName("googlenet");
    EXPECT_EQ(declarationSchedule(googlenet).peakBytes, 376320);
    EXPECT_LT(optimizeSchedule(googlenet, false).peakBytes, 376320);
    EXPECT_EQ(optimizeSchedule(googlenet, true).peakBytes, 326144);

    const auto inception = networkByName("inceptionv3");
    EXPECT_EQ(declarationSchedule(inception).peakBytes, 744800);
    EXPECT_LT(optimizeSchedule(inception, false).peakBytes, 744800);
    EXPECT_EQ(optimizeSchedule(inception, false).peakBytes, 676480);
}

TEST(DagSchedule, RecomputationTradeoffIsPinned)
{
    // p is cheap (tiny GEMM) with two consumers far apart; keeping its
    // 100-byte buffer live across the a->b chain is the peak, so the
    // recompute pass re-runs p right before c instead.
    NetworkSpec net;
    net.name = "recompute";
    auto p = buffer("p", 100);
    auto a = buffer("a", 90);
    a.k = 4096; // expensive: not a recompute candidate
    auto b = buffer("b", 90);
    b.k = 4096;
    const auto pi = net.addLayer(p, {});
    const auto ai = net.addLayer(a, {pi});
    const auto bi = net.addLayer(b, {ai});
    net.addLayer(buffer("c", 10), {bi, pi});

    // The only topological order is p a b c: peak is b's step
    // (p + a + b = 280).
    EXPECT_EQ(optimizeSchedule(net, false).peakBytes, 280);
    const auto rec = optimizeSchedule(net, true);
    // p a b p' c: c binds to the re-production, so the first p frees
    // after a; peak drops to c's step rebuild (90 + 100) + 10.
    EXPECT_EQ(rec.peakBytes, 200);
    EXPECT_NE(rec.label.find("+recompute"), std::string::npos);
    EXPECT_EQ(calculateSequentialPeak(net, rec.entries), 200);
}

TEST(DagSchedule, ScheduleAwareReduceTagsResults)
{
    const auto net = networkByName("googlenet");
    Accelerator acc(griffinArch());
    RunOptions opt;
    opt.sim.sampleFraction = 0.02;
    opt.sim.minSampledTiles = 2;

    // Declaration policy with no budget is the byte-identity path:
    // results carry no schedule annotations.
    const auto base = acc.run(net, DnnCategory::AB, opt);
    EXPECT_TRUE(base.scheduleLabel.empty());
    EXPECT_EQ(base.spillCycles, 0);
    EXPECT_EQ(base.recomputeCycles, 0);

    // Optimized order permutes execution only: same cycles, annotated
    // with the modeled peak.
    RunOptions optimized = opt;
    optimized.schedulePolicy = SchedulePolicy::Optimized;
    const auto reordered = acc.run(net, DnnCategory::AB, optimized);
    EXPECT_EQ(reordered.totalCycles, base.totalCycles);
    EXPECT_FALSE(reordered.scheduleLabel.empty());
    EXPECT_EQ(reordered.peakSramBytes,
              optimizeSchedule(net, false).peakBytes);
    EXPECT_EQ(reordered.spillCycles, 0);

    // A starved budget charges DRAM round-trips for the overflow.
    RunOptions starved = opt;
    starved.sramBudgetBytes = 64 * 1024;
    const auto spilled = acc.run(net, DnnCategory::AB, starved);
    EXPECT_EQ(spilled.scheduleLabel, "declaration");
    EXPECT_GT(spilled.spillCycles, 0);
    EXPECT_EQ(spilled.totalCycles, base.totalCycles + spilled.spillCycles);
    EXPECT_LT(spilled.speedup, base.speedup);
}

} // namespace
} // namespace griffin
