/**
 * @file
 * Integration tests: end-to-end network runs through the public
 * Accelerator API, Griffin's headline behaviours among them.
 */

#include <gtest/gtest.h>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "griffin/accelerator.hh"

namespace griffin {
namespace {

RunOptions
fastOptions()
{
    RunOptions opt;
    opt.sim.sampleFraction = 0.05;
    opt.sim.minSampledTiles = 4;
    opt.rowCap = 64;
    return opt;
}

TEST(Accelerator, DenseBaselineIsNeutralOnDenseCategory)
{
    Accelerator acc(denseBaseline());
    auto r = acc.run(networkByName("resnet50"), DnnCategory::Dense,
                     fastOptions());
    EXPECT_EQ(r.denseCycles,
              networkByName("resnet50").denseCycles(TileShape{}));
    // Compute equals dense; DRAM may stretch the total slightly.
    EXPECT_LE(r.speedup, 1.0);
    EXPECT_GT(r.speedup, 0.5);
}

TEST(Accelerator, SparseArchsAccelerateTheirCategory)
{
    auto opt = fastOptions();
    const auto net = networkByName("resnet50");
    Accelerator b_star(sparseBStar());
    Accelerator a_star(sparseAStar());
    Accelerator ab_star(sparseABStar());
    const auto rb = b_star.run(net, DnnCategory::B, opt);
    const auto ra = a_star.run(net, DnnCategory::A, opt);
    const auto rab = ab_star.run(net, DnnCategory::AB, opt);
    EXPECT_GT(rb.speedup, 1.3);
    EXPECT_GT(ra.speedup, 1.1);
    EXPECT_GT(rab.speedup, rb.speedup);
}

TEST(Accelerator, GriffinBeatsRigidDualOnSingleSparse)
{
    // The hybrid headline (Table III): on DNN.B and DNN.A workloads
    // Griffin's morphs outperform the same hardware without morphing.
    auto opt = fastOptions();
    const auto net = networkByName("bert"); // the DNN.B workload
    Accelerator rigid(sparseABStar());
    Accelerator hybrid(griffinArch());
    const auto r_rigid = rigid.run(net, DnnCategory::B, opt);
    const auto r_hybrid = hybrid.run(net, DnnCategory::B, opt);
    EXPECT_GT(r_hybrid.speedup, r_rigid.speedup);
    EXPECT_GT(r_hybrid.topsPerWatt, r_rigid.topsPerWatt);
}

TEST(Accelerator, GriffinTopsSparTenAcrossCategories)
{
    // Headline: Griffin is more power-efficient than SparTen.AB in
    // every category (paper: 1.2x/3.0x/3.1x/1.4x).
    auto opt = fastOptions();
    const auto net = networkByName("resnet50");
    Accelerator griffin(griffinArch());
    Accelerator sparten(sparTenAB());
    for (DnnCategory cat : allCategories) {
        const auto g = griffin.run(net, cat, opt);
        const auto s = sparten.run(net, cat, opt);
        EXPECT_GT(g.topsPerWatt, s.topsPerWatt) << toString(cat);
    }
}

TEST(Accelerator, SparTenDispatchesToMacGridSimulator)
{
    auto opt = fastOptions();
    Accelerator sparten(sparTenAB());
    auto r = sparten.run(networkByName("alexnet"), DnnCategory::AB, opt);
    EXPECT_GT(r.speedup, 1.5); // near-ideal skipping on 89%/53%
    EXPECT_EQ(r.arch, "SparTen.AB");
}

TEST(Accelerator, LayerResultsCoverTheNetwork)
{
    auto opt = fastOptions();
    Accelerator acc(sparseBStar());
    const auto net = networkByName("alexnet");
    auto r = acc.run(net, DnnCategory::B, opt);
    ASSERT_EQ(r.layers.size(), net.layerCount());
    std::int64_t dense = 0, total = 0;
    for (const auto &layer : r.layers) {
        dense += layer.denseCycles;
        total += layer.totalCycles;
        EXPECT_GT(layer.totalCycles, 0) << layer.name;
    }
    EXPECT_EQ(dense, r.denseCycles);
    EXPECT_EQ(total, r.totalCycles);
}

TEST(Accelerator, ShuffleHelpsOnLaneBiasedWeights)
{
    // The load-imbalance mechanism the paper's shuffler targets
    // (observation VI-A(3)): with lane-biased weights, shuffle-on must
    // beat shuffle-off for a deep-lookahead design.
    auto opt = fastOptions();
    opt.weightLaneBias = 0.8;
    auto off = sparseBStar();
    off.routing = RoutingConfig::sparseB(6, 0, 0, false);
    off.name = "B(6,0,0,off)";
    auto on = sparseBStar();
    on.routing = RoutingConfig::sparseB(6, 0, 0, true);
    on.name = "B(6,0,0,on)";
    const auto net = networkByName("bert");
    const auto r_off = Accelerator(off).run(net, DnnCategory::B, opt);
    const auto r_on = Accelerator(on).run(net, DnnCategory::B, opt);
    EXPECT_GT(r_on.speedup, 1.05 * r_off.speedup);
}

TEST(Accelerator, RunSuiteCoversAllSixNetworks)
{
    auto opt = fastOptions();
    opt.rowCap = 32;
    opt.sim.sampleFraction = 0.02;
    opt.sim.minSampledTiles = 2;
    Accelerator acc(sparseBStar());
    auto results = acc.runSuite(DnnCategory::B, opt);
    ASSERT_EQ(results.size(), 6u);
    EXPECT_GT(geomeanSpeedup(results), 1.2);
}

TEST(Accelerator, RunLayerPlusReduceEqualsRun)
{
    // run() is definitionally the reduce of its per-layer calls; the
    // layer-sharded runtime sweeps rely on this identity.
    auto opt = fastOptions();
    Accelerator acc(griffinArch());
    const auto net = networkByName("alexnet");
    std::vector<LayerResult> layers;
    for (std::size_t l = 0; l < net.layerCount(); ++l)
        layers.push_back(acc.runLayer(net, l, DnnCategory::AB, opt));
    const auto reduced =
        acc.reduceLayers(net, DnnCategory::AB, std::move(layers));
    const auto direct = acc.run(net, DnnCategory::AB, opt);
    EXPECT_EQ(reduced.denseCycles, direct.denseCycles);
    EXPECT_EQ(reduced.totalCycles, direct.totalCycles);
    EXPECT_EQ(reduced.speedup, direct.speedup);
    EXPECT_EQ(reduced.topsPerWatt, direct.topsPerWatt);
    ASSERT_EQ(reduced.layers.size(), direct.layers.size());
    for (std::size_t l = 0; l < reduced.layers.size(); ++l) {
        EXPECT_EQ(reduced.layers[l].totalCycles,
                  direct.layers[l].totalCycles);
        EXPECT_EQ(reduced.layers[l].speedup, direct.layers[l].speedup);
    }
}

TEST(AcceleratorDeathTest, RunLayerIndexOutOfRangeIsFatal)
{
    Accelerator acc(denseBaseline());
    const auto net = networkByName("alexnet");
    EXPECT_EXIT(acc.runLayer(net, net.layerCount(),
                             DnnCategory::Dense, fastOptions()),
                testing::ExitedWithCode(exitUsageError), "out of range");
}

TEST(AcceleratorDeathTest, ReduceLayerCountMismatchIsFatal)
{
    Accelerator acc(denseBaseline());
    const auto net = networkByName("alexnet");
    EXPECT_EXIT(acc.reduceLayers(net, DnnCategory::Dense, {}),
                testing::ExitedWithCode(exitUsageError), "layer results");
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    auto opt = fastOptions();
    Accelerator acc(sparseABStar());
    const auto net = networkByName("googlenet");
    auto r1 = acc.run(net, DnnCategory::AB, opt);
    auto r2 = acc.run(net, DnnCategory::AB, opt);
    EXPECT_EQ(r1.totalCycles, r2.totalCycles);
}

TEST(GeomeanSpeedup, EmptyInputIsNeutral)
{
    EXPECT_DOUBLE_EQ(geomeanSpeedup({}), 1.0);
}

TEST(GeomeanSpeedup, SkipsNonPositiveSpeedups)
{
    NetworkResult good;
    good.network = "good";
    good.speedup = 4.0;
    NetworkResult zero;
    zero.network = "zero";
    zero.speedup = 0.0;
    NetworkResult negative;
    negative.network = "negative";
    negative.speedup = -2.0;

    // Non-positive entries are skipped, not folded into the mean.
    EXPECT_DOUBLE_EQ(geomeanSpeedup({good, zero, negative}), 4.0);
    // All entries degenerate -> neutral 1.0 rather than NaN/abort.
    EXPECT_DOUBLE_EQ(geomeanSpeedup({zero, negative}), 1.0);
}

TEST(GeomeanSpeedup, MatchesGeomeanOnPositiveInput)
{
    NetworkResult a;
    a.speedup = 2.0;
    NetworkResult b;
    b.speedup = 8.0;
    EXPECT_NEAR(geomeanSpeedup({a, b}), 4.0, 1e-12);
}

TEST(AcceleratorDeathTest, BadRowCapIsFatal)
{
    Accelerator acc(denseBaseline());
    RunOptions opt;
    opt.rowCap = 0;
    EXPECT_EXIT(acc.run(networkByName("alexnet"), DnnCategory::Dense,
                        opt),
                testing::ExitedWithCode(exitUsageError), "rowCap");
}

} // namespace
} // namespace griffin
