/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/logging.hh"

namespace griffin {
namespace {

Cli
makeCli()
{
    Cli cli("test program");
    cli.addInt("iters", 10, "iteration count");
    cli.addDouble("sparsity", 0.5, "target sparsity");
    cli.addString("network", "resnet50", "benchmark network");
    cli.addBool("exact", false, "disable tile sampling");
    return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs)
{
    auto cli = makeCli();
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    EXPECT_EQ(cli.getInt("iters"), 10);
    EXPECT_DOUBLE_EQ(cli.getDouble("sparsity"), 0.5);
    EXPECT_EQ(cli.getString("network"), "resnet50");
    EXPECT_FALSE(cli.getBool("exact"));
}

TEST(Cli, EqualsFormParses)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--iters=42", "--sparsity=0.8",
                          "--network=bert", "--exact=true"};
    cli.parse(5, argv);
    EXPECT_EQ(cli.getInt("iters"), 42);
    EXPECT_DOUBLE_EQ(cli.getDouble("sparsity"), 0.8);
    EXPECT_EQ(cli.getString("network"), "bert");
    EXPECT_TRUE(cli.getBool("exact"));
}

TEST(Cli, SpaceFormAndBareBool)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--iters", "7", "--exact"};
    cli.parse(4, argv);
    EXPECT_EQ(cli.getInt("iters"), 7);
    EXPECT_TRUE(cli.getBool("exact"));
}

TEST(Cli, PositionalArgsReturned)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "alpha", "--iters=1", "beta"};
    auto pos = cli.parse(4, argv);
    ASSERT_EQ(pos.size(), 2u);
    EXPECT_EQ(pos[0], "alpha");
    EXPECT_EQ(pos[1], "beta");
}

TEST(Cli, BoolAcceptsOnOffSynonyms)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--exact=on"};
    cli.parse(2, argv);
    EXPECT_TRUE(cli.getBool("exact"));
}

TEST(Cli, BoolConsumesSeparateTokenValue)
{
    // "--exact off" must read as exact=false, not exact=true with a
    // stray "off" positional.
    auto cli = makeCli();
    const char *argv[] = {"prog", "--exact", "off"};
    const auto pos = cli.parse(3, argv);
    EXPECT_FALSE(cli.getBool("exact"));
    EXPECT_TRUE(pos.empty());
}

TEST(Cli, BoolSeparateTokenCoversAllSynonyms)
{
    for (const char *token : {"true", "on", "1"}) {
        auto cli = makeCli();
        const char *argv[] = {"prog", "--exact", token};
        cli.parse(3, argv);
        EXPECT_TRUE(cli.getBool("exact")) << token;
    }
    for (const char *token : {"false", "off", "0"}) {
        auto cli = makeCli();
        const char *argv[] = {"prog", "--exact", token};
        cli.parse(3, argv);
        EXPECT_FALSE(cli.getBool("exact")) << token;
    }
}

TEST(Cli, BareBoolBeforeNonBoolTokenStaysTrue)
{
    // A following token that is not a boolean literal is a positional,
    // and the bare switch still means true.
    auto cli = makeCli();
    const char *argv[] = {"prog", "--exact", "beta"};
    const auto pos = cli.parse(3, argv);
    EXPECT_TRUE(cli.getBool("exact"));
    ASSERT_EQ(pos.size(), 1u);
    EXPECT_EQ(pos[0], "beta");
}

TEST(Cli, BareBoolAtEndOfLineIsTrue)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--exact"};
    cli.parse(2, argv);
    EXPECT_TRUE(cli.getBool("exact"));
}

TEST(CliDeathTest, UnknownFlagIsFatal)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(exitUsageError),
                "unknown flag --bogus");
}

TEST(CliDeathTest, NonNumericIntIsFatal)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--iters=abc"};
    cli.parse(2, argv);
    EXPECT_EXIT(cli.getInt("iters"), testing::ExitedWithCode(exitUsageError),
                "expects an integer");
}

TEST(CliDeathTest, EmptyIntValueIsFatal)
{
    // strtoll("") consumes nothing yet leaves *end == '\0', so an
    // empty value used to parse as 0.
    auto cli = makeCli();
    const char *argv[] = {"prog", "--iters="};
    cli.parse(2, argv);
    EXPECT_EXIT(cli.getInt("iters"), testing::ExitedWithCode(exitUsageError),
                "expects an integer");
}

TEST(CliDeathTest, EmptyDoubleValueIsFatal)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--sparsity="};
    cli.parse(2, argv);
    EXPECT_EXIT(cli.getDouble("sparsity"), testing::ExitedWithCode(exitUsageError),
                "expects a number");
}

TEST(CliDeathTest, TrailingGarbageDoubleIsFatal)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--sparsity=0.5x"};
    cli.parse(2, argv);
    EXPECT_EXIT(cli.getDouble("sparsity"), testing::ExitedWithCode(exitUsageError),
                "expects a number");
}

TEST(CliDeathTest, MissingValueIsFatal)
{
    auto cli = makeCli();
    const char *argv[] = {"prog", "--iters"};
    EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(exitUsageError),
                "expects a value");
}

TEST(Cli, UsageListsFlagsAndDefaults)
{
    auto cli = makeCli();
    const auto u = cli.usage();
    EXPECT_NE(u.find("--iters (default: 10)"), std::string::npos);
    EXPECT_NE(u.find("target sparsity"), std::string::npos);
}

} // namespace
} // namespace griffin
