/**
 * @file
 * Tests for deterministic tile sampling.
 */

#include <set>

#include <gtest/gtest.h>

#include "sim/sampling.hh"

namespace griffin {
namespace {

TEST(Sampling, FullFractionReturnsEveryTileInOrder)
{
    auto tiles = sampleTiles(3, 4, 1.0, 1, 7);
    ASSERT_EQ(tiles.size(), 12u);
    EXPECT_EQ(tiles.front(), (TileCoord{0, 0}));
    EXPECT_EQ(tiles.back(), (TileCoord{2, 3}));
}

TEST(Sampling, FractionPicksApproximateShare)
{
    auto tiles = sampleTiles(100, 10, 0.1, 1, 3);
    EXPECT_NEAR(static_cast<double>(tiles.size()), 100.0, 2.0);
}

TEST(Sampling, MinTilesFloorApplies)
{
    auto tiles = sampleTiles(100, 1, 0.001, 8, 3);
    EXPECT_GE(tiles.size(), 8u);
}

TEST(Sampling, MinTilesClampedToGrid)
{
    auto tiles = sampleTiles(2, 2, 0.01, 64, 3);
    EXPECT_LE(tiles.size(), 4u);
    EXPECT_GE(tiles.size(), 1u);
}

TEST(Sampling, CoordinatesAreUniqueAndInRange)
{
    auto tiles = sampleTiles(37, 11, 0.3, 4, 123);
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for (const auto &t : tiles) {
        EXPECT_GE(t.row, 0);
        EXPECT_LT(t.row, 37);
        EXPECT_GE(t.col, 0);
        EXPECT_LT(t.col, 11);
        EXPECT_TRUE(seen.insert({t.row, t.col}).second);
    }
}

TEST(Sampling, DeterministicForSameSeed)
{
    auto a = sampleTiles(50, 20, 0.2, 4, 99);
    auto b = sampleTiles(50, 20, 0.2, 4, 99);
    EXPECT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Sampling, SpreadCoversTheGrid)
{
    // Strided sampling must not cluster at the start of the grid.
    auto tiles = sampleTiles(1000, 1, 0.05, 1, 5);
    EXPECT_GT(tiles.back().row, 900);
    EXPECT_LT(tiles.front().row, 100);
}

TEST(Sampling, EmptyGrid)
{
    EXPECT_TRUE(sampleTiles(0, 5, 0.5, 1, 1).empty());
}

TEST(SamplingDeathTest, BadFractionPanics)
{
    EXPECT_DEATH(sampleTiles(4, 4, 0.0, 1, 1), "sample fraction");
}

} // namespace
} // namespace griffin
