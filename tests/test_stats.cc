/**
 * @file
 * Tests for summary statistics (geomean is the paper's aggregator).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace griffin {
namespace {

TEST(Stats, GeomeanOfEqualValuesIsThatValue)
{
    EXPECT_DOUBLE_EQ(geomean({3.0, 3.0, 3.0}), 3.0);
}

TEST(Stats, GeomeanKnownValue)
{
    // geomean(2, 8) = 4
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanEmptyIsOne)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
}

TEST(Stats, GeomeanIsNotAboveArithmeticMean)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 10.0};
    EXPECT_LE(geomean(v), mean(v));
}

TEST(StatsDeathTest, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
    EXPECT_DEATH(geomean({-2.0}), "positive");
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    // Sample (N−1) estimator: sum of squared deviations is 32 over 8
    // values, so s = sqrt(32/7), not the population sqrt(32/8) = 2.
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, StddevOfTwoValuesMatchesHandComputation)
{
    // (1, 3): mean 2, squared deviations 1 + 1, sample divisor 1.
    EXPECT_NEAR(stddev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(Stats, RunningStatTracksMinMaxMeanCount)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    rs.add(4.0);
    rs.add(-2.0);
    rs.add(10.0);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.min(), -2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 10.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 12.0);
}

TEST(StatsDeathTest, RunningStatMinOfEmptyPanics)
{
    RunningStat rs;
    EXPECT_DEATH(rs.min(), "empty");
}

} // namespace
} // namespace griffin
