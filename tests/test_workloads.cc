/**
 * @file
 * Tests for the benchmark networks: layer tables, MAC counts, and the
 * Table IV dense-latency targets.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

const TileShape kShape{};

TEST(Workloads, SuiteHasTheSixTableFourNetworks)
{
    auto suite = benchmarkSuite();
    ASSERT_EQ(suite.size(), 6u);
    EXPECT_EQ(suite[0].name, "AlexNet");
    EXPECT_EQ(suite[5].name, "BERT");
    for (const auto &net : suite)
        net.validate();
}

TEST(Workloads, TableFourSparsityRatios)
{
    EXPECT_DOUBLE_EQ(networkByName("alexnet").weightSparsity, 0.89);
    EXPECT_DOUBLE_EQ(networkByName("alexnet").actSparsity, 0.53);
    EXPECT_DOUBLE_EQ(networkByName("bert").weightSparsity, 0.82);
    EXPECT_DOUBLE_EQ(networkByName("bert").actSparsity, 0.0);
    EXPECT_DOUBLE_EQ(networkByName("resnet50").weightSparsity, 0.81);
}

TEST(Workloads, MacCountsAreInTheLiteratureBallpark)
{
    // Published single-inference MAC counts (within a factor that
    // tolerates our head/pool simplifications).
    const struct
    {
        const char *name;
        double macs;
        double tolerance;
    } expected[] = {
        {"AlexNet", 0.72e9, 0.25},     {"GoogLeNet", 1.6e9, 0.30},
        {"ResNet50", 4.1e9, 0.15},     {"InceptionV3", 5.7e9, 0.20},
        {"MobileNetV2", 0.31e9, 0.25}, {"BERT", 5.6e9, 0.15},
    };
    for (const auto &e : expected) {
        const auto macs =
            static_cast<double>(networkByName(e.name).macs());
        EXPECT_NEAR(macs / e.macs, 1.0, e.tolerance) << e.name;
    }
}

TEST(Workloads, DenseLatencyNearTableFour)
{
    // Table IV dense cycle counts; our lowering differs in pooling /
    // head details, so hold each to 35%.  MobileNetV2 is the known
    // outlier: the paper's mapping runs depthwise layers far below
    // even our (already poor) grouped-GEMM utilisation — see
    // EXPERIMENTS.md — so it only gets an order-of-magnitude check.
    for (const auto &net : benchmarkSuite()) {
        const auto cycles =
            static_cast<double>(net.denseCycles(kShape));
        const auto target =
            static_cast<double>(net.paperDenseCycles);
        const double tolerance =
            net.name == "MobileNetV2" ? 0.65 : 0.35;
        EXPECT_NEAR(cycles / target, 1.0, tolerance)
            << net.name << ": " << cycles << " vs " << target;
    }
}

TEST(Workloads, FirstConvsAreDenseActivationOverride)
{
    for (const auto &name :
         {"AlexNet", "GoogLeNet", "ResNet50", "InceptionV3",
          "MobileNetV2"}) {
        const auto net = networkByName(name);
        const auto &first = net.layer(0);
        EXPECT_DOUBLE_EQ(
            net.layerActSparsity(first, DnnCategory::AB), 0.0)
            << name;
        // But later layers follow the network rate.
        const auto &later = net.layer(3);
        EXPECT_GT(net.layerActSparsity(later, DnnCategory::AB), 0.3)
            << name;
    }
}

TEST(Workloads, CategoryGatesSparsity)
{
    const auto net = networkByName("resnet50");
    const auto &layer = net.layer(5);
    EXPECT_DOUBLE_EQ(net.layerWeightSparsity(layer, DnnCategory::Dense),
                     0.0);
    EXPECT_DOUBLE_EQ(net.layerActSparsity(layer, DnnCategory::Dense),
                     0.0);
    EXPECT_DOUBLE_EQ(net.layerWeightSparsity(layer, DnnCategory::B),
                     0.81);
    EXPECT_DOUBLE_EQ(net.layerActSparsity(layer, DnnCategory::B), 0.0);
    EXPECT_DOUBLE_EQ(net.layerActSparsity(layer, DnnCategory::A), 0.43);
    EXPECT_DOUBLE_EQ(net.layerWeightSparsity(layer, DnnCategory::AB),
                     0.81);
}

TEST(Workloads, BertAttentionGemmsAreUnpruned)
{
    const auto net = networkByName("bert");
    for (const auto &node : net.nodes) {
        const auto &layer = node.layer;
        if (layer.name.find("scores") != std::string::npos ||
            layer.name.find("context") != std::string::npos) {
            EXPECT_DOUBLE_EQ(
                net.layerWeightSparsity(layer, DnnCategory::B), 0.0)
                << layer.name;
            EXPECT_EQ(layer.groups, 12) << layer.name;
        }
    }
}

TEST(Workloads, DepthwiseLayersAreGroupedAndUnpruned)
{
    const auto net = networkByName("mobilenetv2");
    int depthwise = 0;
    for (const auto &node : net.nodes) {
        const auto &layer = node.layer;
        if (layer.name.find("depthwise") == std::string::npos)
            continue;
        ++depthwise;
        EXPECT_GT(layer.groups, 1) << layer.name;
        EXPECT_EQ(layer.n, 1) << layer.name; // one channel per group
        EXPECT_DOUBLE_EQ(net.layerWeightSparsity(layer, DnnCategory::B),
                         0.0)
            << layer.name;
    }
    EXPECT_EQ(depthwise, 17);
}

TEST(Workloads, RepeatAndGroupsMultiplyCounts)
{
    LayerSpec layer = fcLayer("x", 16, 32, 8);
    layer.repeat = 3;
    EXPECT_EQ(layer.macs(), 3 * 8 * 16 * 32);
    EXPECT_EQ(layer.denseCycles(kShape), 3 * 2 * 2 * 1);
}

TEST(Workloads, DagShapesArePinned)
{
    // (name, nodes, edges): the four chains have n-1 edges; the two
    // branching networks pin their module fan-out.
    const struct
    {
        const char *name;
        std::size_t nodes;
        std::size_t edges;
    } expected[] = {
        {"alexnet", 8, 7},       {"googlenet", 58, 156},
        {"resnet50", 54, 53},    {"inceptionv3", 95, 231},
        {"mobilenetv2", 53, 52}, {"bert", 9, 8},
    };
    for (const auto &e : expected) {
        const auto net = networkByName(e.name);
        EXPECT_EQ(net.layerCount(), e.nodes) << e.name;
        std::size_t edges = 0;
        for (const auto &node : net.nodes)
            edges += node.inputs.size();
        EXPECT_EQ(edges, e.edges) << e.name;
    }
}

TEST(Workloads, GoogLeNetBranchesShareTheBlockInput)
{
    const auto net = networkByName("googlenet");
    // All four inception_3a heads consume conv2/3x3 (node 2); the
    // 3x3/5x5 tails consume their reduces.
    for (const std::size_t head : {3u, 4u, 6u, 8u})
        EXPECT_EQ(net.nodes[head].inputs, std::vector<std::size_t>{2})
            << net.layer(head).name;
    EXPECT_EQ(net.nodes[5].inputs, std::vector<std::size_t>{4});
    EXPECT_EQ(net.nodes[7].inputs, std::vector<std::size_t>{6});
    // The classifier consumes 5b's four branch terminals.
    EXPECT_EQ(net.nodes.back().inputs.size(), 4u);
}

TEST(Workloads, InceptionV3ReducesFanOut)
{
    const auto net = networkByName("inceptionv3");
    // mixed_c blocks split each 3x3 reduce into a 1x3/3x1 pair: two
    // distinct consumers of one producer.
    std::size_t splits = 0;
    for (std::size_t v = 0; v < net.layerCount(); ++v) {
        if (net.layer(v).name.find("/3x3_a") == std::string::npos)
            continue;
        const auto producer = net.nodes[v].inputs.at(0);
        EXPECT_EQ(net.nodes[v + 1].inputs.at(0), producer)
            << net.layer(v).name;
        ++splits;
    }
    EXPECT_EQ(splits, 2u);
    // The classifier consumes mixed_c2's six branch terminals.
    EXPECT_EQ(net.nodes.back().inputs.size(), 6u);
}

TEST(WorkloadsDeathTest, UnknownNetworkIsFatal)
{
    EXPECT_EXIT(networkByName("VGG16"), testing::ExitedWithCode(exitUsageError),
                "unknown network");
}

TEST(WorkloadsDeathTest, UnknownNetworkSuggestsTheNearestName)
{
    EXPECT_EXIT(networkByName("goglenet"), testing::ExitedWithCode(exitUsageError),
                "did you mean 'GoogLeNet'");
}

TEST(WorkloadsDeathTest, MacOverflowIsFatal)
{
    LayerSpec huge;
    huge.name = "huge";
    huge.m = std::int64_t{1} << 31;
    huge.k = std::int64_t{1} << 31;
    huge.n = 4;
    EXPECT_EXIT(huge.validate(), testing::ExitedWithCode(exitUsageError),
                "overflows int64");
}

TEST(WorkloadsDeathTest, InvalidLayerIsFatal)
{
    LayerSpec bad;
    bad.name = "bad";
    bad.m = 0;
    EXPECT_EXIT(bad.validate(), testing::ExitedWithCode(exitUsageError),
                "non-positive GEMM dims");
}

} // namespace
} // namespace griffin
