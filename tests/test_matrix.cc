/**
 * @file
 * Tests for the dense matrix container and reference GEMM.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/matrix.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

TEST(Matrix, ZeroInitialised)
{
    MatrixI8 m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
}

TEST(Matrix, EmptyMatrixSparsityIsZero)
{
    MatrixI8 m;
    EXPECT_TRUE(m.empty());
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.0);
}

TEST(Matrix, AtOrZeroPadsOutside)
{
    MatrixI8 m(2, 2);
    m.at(1, 1) = 7;
    EXPECT_EQ(m.atOrZero(1, 1), 7);
    EXPECT_EQ(m.atOrZero(2, 0), 0);
    EXPECT_EQ(m.atOrZero(0, 5), 0);
}

TEST(MatrixDeathTest, AtOutOfRangePanics)
{
    MatrixI8 m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of");
    const MatrixI8 &cm = m;
    EXPECT_DEATH(cm.at(0, 2), "out of");
}

TEST(Matrix, NnzAndSparsityCount)
{
    MatrixI8 m(2, 5);
    m.at(0, 0) = 1;
    m.at(1, 4) = -3;
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.8);
}

TEST(Matrix, FillAndEquality)
{
    MatrixI8 a(2, 2), b(2, 2);
    a.fill(5);
    EXPECT_NE(a, b);
    b.fill(5);
    EXPECT_EQ(a, b);
}

TEST(MatmulRef, KnownSmallProduct)
{
    // [1 2] [5 6]   [19 22]
    // [3 4] [7 8] = [43 50]
    MatrixI8 a(2, 2), b(2, 2);
    a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
    b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
    auto c = matmulRef(a, b);
    EXPECT_EQ(c.at(0, 0), 19);
    EXPECT_EQ(c.at(0, 1), 22);
    EXPECT_EQ(c.at(1, 0), 43);
    EXPECT_EQ(c.at(1, 1), 50);
}

TEST(MatmulRef, IdentityIsNeutral)
{
    Rng rng(21);
    auto a = randomDense(5, 5, rng);
    MatrixI8 eye(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        eye.at(i, i) = 1;
    auto c = matmulRef(a, eye);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t k = 0; k < 5; ++k)
            EXPECT_EQ(c.at(r, k), a.at(r, k));
}

TEST(MatmulRef, Int8ExtremesAccumulateWithoutOverflow)
{
    // 64 x (-128 * -128) = 1,048,576 fits INT32 comfortably; verify no
    // premature narrowing anywhere on the accumulate path.
    MatrixI8 a(1, 64), b(64, 1);
    for (std::size_t k = 0; k < 64; ++k) {
        a.at(0, k) = -128;
        b.at(k, 0) = -128;
    }
    auto c = matmulRef(a, b);
    EXPECT_EQ(c.at(0, 0), 64 * 128 * 128);
}

TEST(MatmulRefDeathTest, ShapeMismatchPanics)
{
    MatrixI8 a(2, 3), b(4, 2);
    EXPECT_DEATH(matmulRef(a, b), "shape mismatch");
}

TEST(MatmulRef, ZeroOperandsContributeNothing)
{
    Rng rng(22);
    auto a = randomSparse(8, 16, 0.7, rng);
    auto b = randomSparse(16, 8, 0.7, rng);
    auto c = matmulRef(a, b);
    // Cross-check against a fully explicit triple loop.
    for (std::size_t m = 0; m < 8; ++m) {
        for (std::size_t n = 0; n < 8; ++n) {
            std::int32_t acc = 0;
            for (std::size_t k = 0; k < 16; ++k)
                acc += std::int32_t{a.at(m, k)} * std::int32_t{b.at(k, n)};
            EXPECT_EQ(c.at(m, n), acc);
        }
    }
}

} // namespace
} // namespace griffin
