/**
 * @file
 * Tests for blocked 3-D tile views and dense cycle accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/sparsity.hh"
#include "tensor/tile.hh"

namespace griffin {
namespace {

TEST(TileShape, PaperGeometryIs1024Macs)
{
    TileShape shape; // defaults are the paper's (16,16,4)
    EXPECT_EQ(shape.k0, 16);
    EXPECT_EQ(shape.n0, 16);
    EXPECT_EQ(shape.m0, 4);
    EXPECT_EQ(shape.macsPerCycle(), 1024);
}

TEST(StepsForK, CeilingBehaviour)
{
    EXPECT_EQ(stepsForK(0, 16), 0);
    EXPECT_EQ(stepsForK(1, 16), 1);
    EXPECT_EQ(stepsForK(16, 16), 1);
    EXPECT_EQ(stepsForK(17, 16), 2);
    EXPECT_EQ(stepsForK(160, 16), 10);
}

TEST(TileViewA, IndexingMatchesFlatLayout)
{
    Rng rng(31);
    auto a = randomDense(8, 40, rng);
    TileShape shape;
    TileViewA view(a, shape, 4); // rows 4..7
    EXPECT_EQ(view.steps(), 3);  // ceil(40/16)
    EXPECT_EQ(view.lanes(), 16);
    EXPECT_EQ(view.units(), 4);
    for (std::int64_t k1 = 0; k1 < view.steps(); ++k1) {
        for (int k2 = 0; k2 < 16; ++k2) {
            for (int m = 0; m < 4; ++m) {
                const auto k = k1 * 16 + k2;
                const std::int8_t want =
                    k < 40 ? a.at(4 + m, static_cast<std::size_t>(k)) : 0;
                EXPECT_EQ(view.at(k1, k2, m), want);
            }
        }
    }
}

TEST(TileViewA, EdgeTilePadsRowsWithZero)
{
    Rng rng(32);
    auto a = randomDense(6, 16, rng); // 6 rows, M0=4 -> second tile ragged
    TileShape shape;
    TileViewA view(a, shape, 4);
    EXPECT_EQ(view.at(0, 0, 0), a.at(4, 0)); // row 4 exists
    EXPECT_EQ(view.at(0, 3, 1), a.at(5, 3)); // row 5 exists
    EXPECT_EQ(view.at(0, 3, 2), 0);          // row 6 -> zero padded
    EXPECT_EQ(view.at(0, 3, 3), 0);          // row 7 -> zero padded
}

TEST(TileViewB, IndexingMatchesFlatLayout)
{
    Rng rng(33);
    auto b = randomDense(40, 32, rng);
    TileShape shape;
    TileViewB view(b, shape, 16); // cols 16..31
    EXPECT_EQ(view.steps(), 3);
    for (std::int64_t k1 = 0; k1 < view.steps(); ++k1) {
        for (int k2 = 0; k2 < 16; ++k2) {
            for (int n = 0; n < 16; ++n) {
                const auto k = k1 * 16 + k2;
                const std::int8_t want =
                    k < 40 ? b.at(static_cast<std::size_t>(k), 16 + n) : 0;
                EXPECT_EQ(view.at(k1, k2, n), want);
            }
        }
    }
}

TEST(TileViewB, PartialLastStepReadsZero)
{
    Rng rng(34);
    auto b = randomDense(20, 16, rng); // K=20: step 1 has lanes 4..15 padded
    TileShape shape;
    TileViewB view(b, shape, 0);
    EXPECT_EQ(view.steps(), 2);
    for (int k2 = 4; k2 < 16; ++k2)
        for (int n = 0; n < 16; ++n)
            EXPECT_EQ(view.at(1, k2, n), 0);
    EXPECT_FALSE(view.nonzero(1, 15, 0));
}

TEST(DenseCycles, MatchesClosedForm)
{
    TileShape shape;
    // 64x256x64: 16 row tiles x 4 col tiles x 16 steps.
    EXPECT_EQ(denseCycles(64, 256, 64, shape), 16 * 4 * 16);
    // Ragged everywhere: ceil(5/4) * ceil(17/16) * ceil(33/16)
    EXPECT_EQ(denseCycles(5, 33, 17, shape), 2 * 2 * 3);
    EXPECT_EQ(denseCycles(0, 16, 16, shape), 0);
}

TEST(DenseCycles, OneCyclePerStepAt1024Macs)
{
    TileShape shape;
    // A perfectly shaped GEMM runs at 1024 MACs/cycle.
    const std::int64_t m = 128, k = 512, n = 256;
    const auto cycles = denseCycles(m, k, n, shape);
    EXPECT_EQ(cycles * shape.macsPerCycle(), m * k * n);
}

} // namespace
} // namespace griffin
