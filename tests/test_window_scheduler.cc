/**
 * @file
 * Tests for the generic sliding-window scheduler: cycle accounting,
 * borrowing semantics, bandwidth capping, and the paper's speedup
 * bounds.
 */

#include <gtest/gtest.h>

#include "sched/window_scheduler.hh"

namespace griffin {
namespace {

/** Dense queues: every slot has an element at every step. */
SlotQueues
denseQueues(const SlotGrid &grid)
{
    SlotQueues q(grid);
    for (std::int64_t s = 0; s < grid.steps; ++s)
        for (int c = 0; c < grid.cols; ++c)
            for (int r = 0; r < grid.rows; ++r)
                for (int l = 0; l < grid.lanes; ++l)
                    q.push(s, l, r, c);
    return q;
}

BorrowWindow
window(int steps, int lane = 0, int row = 0, int col = 0)
{
    BorrowWindow w;
    w.steps = steps;
    w.laneDist = lane;
    w.rowDist = row;
    w.colDist = col;
    w.advanceCap = steps;
    w.budgetCeiling = steps;
    return w;
}

TEST(WindowScheduler, DenseTakesOneCyclePerStep)
{
    SlotGrid grid{10, 4, 1, 2};
    auto result = runWindowSchedule(denseQueues(grid), window(1), false);
    EXPECT_EQ(result.stats.cycles, 10);
    EXPECT_EQ(result.stats.ops, 10 * 4 * 2);
    EXPECT_EQ(result.stats.stolenOps, 0);
    EXPECT_EQ(result.stats.idleSlotCycles, 0);
}

TEST(WindowScheduler, DenseGainsNothingFromDeepWindow)
{
    // With every slot loaded at every step, no window depth helps.
    SlotGrid grid{10, 4, 1, 1};
    auto result =
        runWindowSchedule(denseQueues(grid), window(5, 2), false);
    EXPECT_EQ(result.stats.cycles, 10);
}

TEST(WindowScheduler, EmptyQueuesFinishInstantly)
{
    SlotGrid grid{10, 4, 1, 1};
    SlotQueues q(grid);
    auto result = runWindowSchedule(q, window(2), false);
    EXPECT_EQ(result.stats.cycles, 0);
    EXPECT_EQ(result.stats.ops, 0);
}

TEST(WindowScheduler, TimeBorrowCompressesSingleLane)
{
    // One lane, elements at even steps only (50% sparse): window of 2
    // lets each cycle take one element while the window slides 2.
    SlotGrid grid{20, 1, 1, 1};
    SlotQueues q(grid);
    for (std::int64_t s = 0; s < 20; s += 2)
        q.push(s, 0, 0, 0);
    auto dense_like = runWindowSchedule(q, window(1), false);
    // W = 1: the window must walk every step.
    EXPECT_EQ(dense_like.stats.cycles, 19); // last element is at step 18
    auto compressed = runWindowSchedule(q, window(2), false);
    EXPECT_EQ(compressed.stats.cycles, 10); // 10 elements, 1 per cycle
}

TEST(WindowScheduler, IdealSpeedupIsWindowDepth)
{
    // A fully empty stretch can be skipped at most W steps per cycle
    // (paper observation VI-A(1): max speedup = 1 + d1).
    SlotGrid grid{100, 1, 1, 1};
    SlotQueues q(grid);
    q.push(99, 0, 0, 0); // single element at the end
    for (int w = 1; w <= 5; ++w) {
        auto result = runWindowSchedule(q, window(w), false);
        // Window must advance from 0 to at least 99-(w-1), at w/cycle,
        // then one consuming cycle.
        const std::int64_t expect =
            (99 - (w - 1) + w - 1) / w + 1;
        EXPECT_EQ(result.stats.cycles, expect) << "W=" << w;
    }
}

TEST(WindowScheduler, LaneStealingBalancesLoad)
{
    // Lane 1 has 10 elements, lane 0 none.  Without lookaside the
    // window drags behind lane 1; with laneDist = 1 the idle lane 0
    // can steal forward (source = consumer + Δ).
    SlotGrid grid{10, 2, 1, 1};
    SlotQueues q(grid);
    for (std::int64_t s = 0; s < 10; ++s)
        q.push(s, 1, 0, 0);
    auto alone = runWindowSchedule(q, window(4, 0), false);
    EXPECT_EQ(alone.stats.cycles, 10); // one per cycle from lane 1
    auto helped = runWindowSchedule(q, window(4, 1), false);
    EXPECT_EQ(helped.stats.cycles, 5); // two per cycle
    EXPECT_EQ(helped.stats.stolenOps, 5);
}

TEST(WindowScheduler, StealingIsForwardOnly)
{
    // Loaded lane 1 cannot be helped by lane 0 if laneDist reaches the
    // wrong way?  No: distances are forward (Δ >= 0), so lane 0 *can*
    // steal from lane 1 (source = consumer + Δ).  The loaded lane
    // must be *ahead* of the idle one.
    SlotGrid grid{10, 2, 1, 1};
    SlotQueues q(grid);
    for (std::int64_t s = 0; s < 10; ++s)
        q.push(s, 1, 0, 0); // all work in lane 1
    auto result = runWindowSchedule(q, window(4, 1), false);
    EXPECT_EQ(result.stats.cycles, 5); // lane 0 steals lane 1's work
    // And the reverse: work in lane 0 cannot be reached by lane 1,
    // whose forward window (lane 1 + Δ) points outside the loaded
    // lane.  Only lane 0 drains its own queue.
    SlotQueues q2(grid);
    for (std::int64_t s = 0; s < 10; ++s)
        q2.push(s, 0, 0, 0);
    auto fwd = runWindowSchedule(q2, window(4, 1), false);
    EXPECT_EQ(fwd.stats.cycles, 10);
    EXPECT_EQ(fwd.stats.stolenOps, 0);
}

TEST(WindowScheduler, RowAndColumnStealing)
{
    // Borrowing is forward-only, so work parked in (row 1, col 1) is
    // reachable by consumers at lower coordinates.
    SlotGrid grid{8, 1, 2, 2};
    SlotQueues q2(grid);
    for (std::int64_t s = 0; s < 8; ++s)
        q2.push(s, 0, 1, 1);
    auto no_reach = runWindowSchedule(q2, window(4), false);
    EXPECT_EQ(no_reach.stats.cycles, 8);
    // rowDist = 1: slot (row 0, col 1) now also reaches (1,1).
    auto row_reach = runWindowSchedule(q2, window(4, 0, 1, 0), false);
    EXPECT_EQ(row_reach.stats.cycles, 4);
    // rowDist = colDist = 1: (0,0), (0,1), (1,0) and the owner all
    // drain heads of the same deep queue in one cycle (the window
    // exposes four eligible elements at once).
    auto both_reach = runWindowSchedule(q2, window(4, 0, 1, 1), false);
    EXPECT_EQ(both_reach.stats.cycles, 2);
}

TEST(WindowScheduler, BandwidthCapThrottlesSkipping)
{
    // 100 empty steps before the lone element; window 10 but only 1
    // step/cycle of bandwidth -> ~100 cycles to stream past.
    SlotGrid grid{101, 1, 1, 1};
    SlotQueues q(grid);
    q.push(100, 0, 0, 0);
    auto w = window(10);
    w.advanceCap = 1.0;
    w.budgetCeiling = 10.0;
    auto result = runWindowSchedule(q, w, false);
    EXPECT_GE(result.stats.cycles, 92); // 10 prefilled, 1/cycle after
    EXPECT_LE(result.stats.cycles, 101);
    EXPECT_GT(result.stats.bwLimitedCycles, 0);
}

TEST(WindowScheduler, FractionalBandwidthAccumulates)
{
    SlotGrid grid{11, 1, 1, 1};
    SlotQueues q(grid);
    q.push(10, 0, 0, 0);
    auto w = window(2);
    w.advanceCap = 0.5; // one step every two cycles
    w.budgetCeiling = 2.0;
    auto result = runWindowSchedule(q, w, false);
    // 10 steps to cover at 0.5/cycle with 2 prefilled: ~16+ cycles.
    EXPECT_GE(result.stats.cycles, 16);
    EXPECT_LE(result.stats.cycles, 21);
}

TEST(WindowScheduler, StepCostsChargeRawBandwidth)
{
    // Two "compressed" steps, the second costing 5 raw steps.  With
    // 1 raw step/cycle bandwidth the scheduler must idle ~4 cycles
    // before consuming the second element.
    SlotGrid grid{2, 1, 1, 1};
    SlotQueues q(grid);
    q.push(0, 0, 0, 0);
    q.push(1, 0, 0, 0);
    std::vector<std::int64_t> costs{1, 5};
    auto w = window(1);
    w.advanceCap = 1.0;
    w.budgetCeiling = 5.0;
    auto cheap = runWindowSchedule(q, w, false, nullptr);
    EXPECT_EQ(cheap.stats.cycles, 2);
    auto costly = runWindowSchedule(q, w, false, &costs);
    EXPECT_GE(costly.stats.cycles, 5);
}

TEST(WindowScheduler, RecordsOpsExactlyWhenAsked)
{
    SlotGrid grid{4, 2, 1, 1};
    auto q = denseQueues(grid);
    auto without = runWindowSchedule(q, window(2, 1), false);
    EXPECT_TRUE(without.ops.empty());
    auto with = runWindowSchedule(q, window(2, 1), true);
    EXPECT_EQ(static_cast<std::int64_t>(with.ops.size()),
              with.stats.ops);
    EXPECT_EQ(with.stats.ops, 8);
}

TEST(WindowScheduler, OwnPlusStolenEqualsTotal)
{
    SlotGrid grid{30, 4, 2, 2};
    SlotQueues q(grid);
    // Staggered load: lane l gets elements where (s + l) % 3 == 0.
    for (std::int64_t s = 0; s < 30; ++s)
        for (int c = 0; c < 2; ++c)
            for (int r = 0; r < 2; ++r)
                for (int l = 0; l < 4; ++l)
                    if ((s + l) % 3 == 0)
                        q.push(s, l, r, c);
    auto result = runWindowSchedule(q, window(3, 1, 1, 1), false);
    EXPECT_EQ(result.stats.ownOps + result.stats.stolenOps,
              result.stats.ops);
    EXPECT_EQ(result.stats.ops, q.totalElements());
}

TEST(WindowSchedulerDeathTest, InvalidParametersPanic)
{
    SlotGrid grid{4, 1, 1, 1};
    SlotQueues q(grid);
    q.push(0, 0, 0, 0);
    BorrowWindow w;
    w.steps = 0;
    EXPECT_DEATH(runWindowSchedule(q, w, false), "window of 0");
    w = window(2);
    w.advanceCap = 0.0;
    EXPECT_DEATH(runWindowSchedule(q, w, false), "advance cap");
    w = window(2);
    std::vector<std::int64_t> bad_costs{1, 1, 1}; // size mismatch
    EXPECT_DEATH(runWindowSchedule(q, w, false, &bad_costs),
                 "cost vector size");
}

TEST(WindowSchedulerDeathTest, QueuePushValidation)
{
    SlotGrid grid{4, 2, 1, 1};
    SlotQueues q(grid);
    EXPECT_DEATH(q.push(4, 0, 0, 0), "outside grid");
    EXPECT_DEATH(q.push(0, 2, 0, 0), "outside grid");
    q.push(2, 0, 0, 0);
    EXPECT_DEATH(q.push(1, 0, 0, 0), "increasing step order");
}

} // namespace
} // namespace griffin
