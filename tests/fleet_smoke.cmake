# CTest script: the acceptance bar for fleet mode.  One experiment
# (fig5, narrowed by a --grid override to three design points on one
# network) is run
#   (a) unsharded (`run`)                      -> the baseline bytes
#   (b) `serve` + two workers                  -> rows and tables
#       byte-identical to (a)
#   (c) `serve` + a worker that abandons its first lease without
#       acking (--abandon-after 1, the deterministic stand-in for a
#       mid-run kill) + one survivor           -> the dropped lease is
#       re-queued and stolen, every process exits 0, and the output
#       is STILL byte-identical to (a)
#
# The worker processes must run concurrently with the coordinator, so
# the process choreography lives in a generated POSIX sh script
# (execute_process is synchronous); the byte comparisons happen here.
#
# Invoked as:
#   cmake -DGRIFFIN_BENCH=<path> -DWORK_DIR=<dir> -P fleet_smoke.cmake

if(NOT GRIFFIN_BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DGRIFFIN_BENCH=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(grid "arch=Sparse.B*,AB(2,0,0,4,0,1,on),AB(1,0,0,4,0,1,on),network=alexnet")

# (a) the unsharded baseline: rows to base.jsonl, tables to stdout.
execute_process(
    COMMAND "${GRIFFIN_BENCH}" run fig5 --grid "${grid}"
            --sample 0.01 --rowcap 4 --out "${WORK_DIR}/base.jsonl"
    OUTPUT_FILE "${WORK_DIR}/base_tables.txt"
    ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "baseline run failed (${rc}):\n${err}")
endif()

# (b)+(c) fleet choreography.  The script waits on every pid, so a
# nonzero exit from any process fails the test.
file(WRITE "${WORK_DIR}/fleet_run.sh" "#!/bin/sh
set -u
cd '${WORK_DIR}'
B='${GRIFFIN_BENCH}'
GRID='${grid}'

# One job per lease so the dying worker's abandonment provably strands
# work for the survivor to steal.
start_serve() {
    rm -f port.txt
    \"$B\" serve fig5 --grid \"$GRID\" --sample 0.01 --rowcap 4 \\
        --lease-jobs 1 --port-file port.txt --out \"$1.jsonl\" \\
        > \"$1_tables.txt\" 2> \"$1_err.txt\" &
    SERVE=$!
    i=0
    while [ ! -f port.txt ] && [ \"$i\" -lt 100 ]; do
        sleep 0.1; i=$((i+1))
    done
    if [ ! -f port.txt ]; then
        echo 'coordinator never wrote its port file' >&2
        kill \"$SERVE\" 2>/dev/null
        exit 1
    fi
    PORT=$(cat port.txt)
}

check() { # pid name
    wait \"$1\"
    rc=$?
    if [ \"$rc\" -ne 0 ]; then
        echo \"$2 exited with status $rc\" >&2
        exit 1
    fi
}

# (b) happy path: two workers split the run.
start_serve fleet
\"$B\" worker --connect \"127.0.0.1:$PORT\" --worker-name w1 > w1.log 2>&1 &
W1=$!
\"$B\" worker --connect \"127.0.0.1:$PORT\" --worker-name w2 > w2.log 2>&1 &
W2=$!
check \"$W1\" 'worker w1'
check \"$W2\" 'worker w2'
check \"$SERVE\" 'coordinator (happy path)'

# (c) fault path: the first worker walks away from its first lease
# without acking; the survivor must steal and finish it.
start_serve fleet_death
\"$B\" worker --connect \"127.0.0.1:$PORT\" --worker-name dying \\
    --abandon-after 1 > dying.log 2>&1 &
WD=$!
\"$B\" worker --connect \"127.0.0.1:$PORT\" --worker-name survivor \\
    > survivor.log 2>&1 &
WS=$!
check \"$WD\" 'worker dying'
check \"$WS\" 'worker survivor'
check \"$SERVE\" 'coordinator (fault path)'
")

execute_process(
    COMMAND sh "${WORK_DIR}/fleet_run.sh"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fleet choreography failed (${rc}):\n${out}\n${err}")
endif()

file(READ "${WORK_DIR}/base.jsonl" base_rows)
file(READ "${WORK_DIR}/base_tables.txt" base_tables)
string(LENGTH "${base_rows}" base_len)
if(base_len EQUAL 0)
    message(FATAL_ERROR "baseline .jsonl document is empty")
endif()

foreach(variant fleet fleet_death)
    file(READ "${WORK_DIR}/${variant}.jsonl" rows)
    if(NOT rows STREQUAL base_rows)
        message(FATAL_ERROR
                "${variant}.jsonl differs from the unsharded baseline")
    endif()
    file(READ "${WORK_DIR}/${variant}_tables.txt" tables)
    if(NOT tables STREQUAL base_tables)
        message(FATAL_ERROR
                "${variant} tables differ from the unsharded baseline")
    endif()
endforeach()

# The fault run must actually have exercised the re-lease path.
file(READ "${WORK_DIR}/fleet_death_err.txt" death_log)
if(NOT death_log MATCHES "re-queued")
    message(FATAL_ERROR
            "fault run never re-queued a lease — the dying worker's "
            "abandonment was not observed:\n${death_log}")
endif()

message(STATUS
        "fleet smoke OK: 2-worker and worker-death runs both "
        "byte-identical to the unsharded baseline, dropped lease "
        "re-queued and stolen")
