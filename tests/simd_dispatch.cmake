# CTest script: SIMD dispatch equivalence, end to end.
#
# The same fig5 slice runs twice — once under whatever backend the CPU
# dispatches (AVX2 here, NEON on ARM, scalar elsewhere) and once with
# GRIFFIN_FORCE_SCALAR=1 pinning the portable reference — and the
# result-row documents must be byte-identical.  This is the whole-run
# closure of the per-kernel equivalence tests in tests/test_simd.cc:
# the SIMD layer is a pure speedup, never a behaviour change.
#
# A third run with --kernels additionally checks the perf artifact's
# backend report: under GRIFFIN_FORCE_SCALAR the kernels section must
# name the scalar backend, proving the knob actually reroutes dispatch
# rather than just being read.
#
# Invoked as:
#   cmake -DGRIFFIN_BENCH=<path> -DWORK_DIR=<dir> -P simd_dispatch.cmake

if(NOT GRIFFIN_BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DGRIFFIN_BENCH=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(fidelity --sample 0.01 --rowcap 4 --threads 2)

# -- auto dispatch ----------------------------------------------------

execute_process(
    COMMAND "${GRIFFIN_BENCH}" run fig5 ${fidelity}
            --out "${WORK_DIR}/auto.jsonl"
    OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "auto-dispatch run failed (${rc1}):\n${err1}")
endif()

# -- forced scalar ----------------------------------------------------

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env GRIFFIN_FORCE_SCALAR=1
            "${GRIFFIN_BENCH}" run fig5 ${fidelity}
            --out "${WORK_DIR}/scalar.jsonl"
    OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "forced-scalar run failed (${rc2}):\n${err2}")
endif()

file(READ "${WORK_DIR}/auto.jsonl" rows_auto)
file(READ "${WORK_DIR}/scalar.jsonl" rows_scalar)
string(LENGTH "${rows_auto}" auto_len)
if(auto_len EQUAL 0)
    message(FATAL_ERROR "auto-dispatch row document is empty")
endif()
if(NOT rows_auto STREQUAL rows_scalar)
    message(FATAL_ERROR
        "SIMD dispatch changed result bytes: auto vs "
        "GRIFFIN_FORCE_SCALAR=1 differ on fig5")
endif()

# -- the force knob really reroutes dispatch --------------------------

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env GRIFFIN_FORCE_SCALAR=1
            "${GRIFFIN_BENCH}" perf --kernels
            --out "${WORK_DIR}/kernels.json"
    OUTPUT_VARIABLE out3 ERROR_VARIABLE err3 RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
    message(FATAL_ERROR "perf --kernels run failed (${rc3}):\n${err3}")
endif()
file(READ "${WORK_DIR}/kernels.json" kernels_doc)
if(NOT kernels_doc MATCHES "\"kernels\": \\[")
    message(FATAL_ERROR "perf --kernels artifact lacks the kernels "
                        "section")
endif()
if(NOT kernels_doc MATCHES "\"backend\": \"scalar\"")
    message(FATAL_ERROR "GRIFFIN_FORCE_SCALAR=1 did not pin the "
                        "scalar backend in the kernels report")
endif()

message(STATUS "simd_dispatch: auto and forced-scalar fig5 rows are "
               "byte-identical; force knob pins the scalar backend")
