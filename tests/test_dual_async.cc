/**
 * @file
 * Focused tests for the asynchronous two-level dual-sparse engine:
 * per-column independence, the shared ABUF residency window, the
 * bandwidth frontier, and the downgrade behaviours of Table III.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sched/b_preprocess.hh"
#include "sched/dual_scheduler.hh"
#include "sched/verify.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

const TileShape kShape{};

DualSchedule
runDual(const MatrixI8 &a, const MatrixI8 &b, const RoutingConfig &cfg,
        double bw, bool record = false)
{
    Shuffler sh(cfg.shuffle, kShape.k0);
    TileViewA va(a, kShape, 0);
    TileViewB vb(b, kShape, 0);
    auto stream = preprocessB(vb, cfg.b, sh, false);
    return scheduleDual(va, vb, cfg, sh, &stream, bw, record);
}

TEST(DualAsync, DenseOperandsRunAtDenseRate)
{
    Rng rng(71);
    auto a = randomDense(4, 256, rng);
    auto b = randomDense(256, 16, rng);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    auto dual = runDual(a, b, cfg, 9.0);
    EXPECT_EQ(dual.cycles, 16); // = K1: nothing to skip
}

TEST(DualAsync, SpeedupCompoundsAcrossStages)
{
    Rng rng(72);
    auto a = randomSparse(4, 1024, 0.5, rng);
    auto b = randomSparse(1024, 16, 0.8, rng);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    auto dual = runDual(a, b, cfg, 9.0);
    Shuffler sh(true, kShape.k0);
    TileViewB vb(b, kShape, 0);
    auto stream = preprocessB(vb, cfg.b, sh, false);
    // Runtime must beat the B-only compressed stream length (the
    // A-side skip is stage 2's whole point) but cannot beat the
    // densest column's pair count.
    EXPECT_LT(dual.cycles, stream.cycles());
    EXPECT_GE(dual.cycles,
              dual.effectualPairs / (kShape.k0 * kShape.m0 *
                                     kShape.n0));
}

TEST(DualAsync, ColumnsAdvanceIndependently)
{
    // Column 0 dense in B, column 1 nearly empty: an asynchronous
    // engine finishes in ~the dense column's time, not the sum.
    Rng rng(73);
    auto a = randomDense(4, 512, rng);
    MatrixI8 b(512, 16);
    for (std::size_t k = 0; k < 512; ++k) {
        b.at(k, 0) = 1;                  // column 0 fully dense
        if (k % 16 == 0)
            b.at(k, 1) = 1;              // column 1 sparse
    }
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    auto dual = runDual(a, b, cfg, 9.0);
    // Dense column needs 32 entries; the whole tile should not need
    // meaningfully more than that.
    EXPECT_LE(dual.cycles, 40);
}

TEST(DualAsync, BandwidthFrontierThrottles)
{
    Rng rng(74);
    auto a = randomSparse(4, 1024, 0.6, rng);
    auto b = randomSparse(1024, 16, 0.9, rng);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    auto fast = runDual(a, b, cfg, 9.0);
    auto slow = runDual(a, b, cfg, 1.0);
    EXPECT_GT(slow.cycles, fast.cycles);
    EXPECT_GT(slow.stage2.bwLimitedCycles, 0);
    // 1 raw step/cycle cannot finish faster than the raw step count
    // minus the prefilled window.
    EXPECT_GE(slow.cycles, 64 - 9);
}

TEST(DualAsync, DowngradeOnDenseAStaysWithinSparseBWindow)
{
    // Table III: on DNN.B the rigid dual design degrades toward
    // Sparse.B(db1,0,db3).  Every non-empty stream entry of a column
    // costs one cycle (dense A skips nothing), but columns retire
    // their own bubbles independently, so the tile lands between the
    // most loaded column's entry count and the synchronized stream
    // length.
    Rng rng(75);
    auto a = randomDense(4, 1024, rng);
    auto b = randomSparse(1024, 16, 0.85, rng);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    Shuffler sh(cfg.shuffle, kShape.k0);
    TileViewB vb(b, kShape, 0);
    auto stream = preprocessB(vb, cfg.b, sh, false);
    TileViewA va(a, kShape, 0);
    auto dual = scheduleDual(va, vb, cfg, sh, &stream, 9.0, false);
    EXPECT_LE(dual.cycles, stream.cycles());
    // Lower bounds: lanes may drain different BBUF entries in one
    // cycle (that is what the BMUX fan-in buys), but a column's window
    // holds only 1+da1 entries, and no slot can beat its own pair
    // count (dense A pairs every element with all 4 rows).
    std::int64_t max_col_entries = 0;
    std::int64_t max_slot_pairs = 0;
    for (int j = 0; j < stream.cols(); ++j) {
        std::int64_t entries = 0;
        for (int l = 0; l < stream.lanes(); ++l) {
            std::int64_t slot_pairs = 0;
            for (std::int64_t c = 0; c < stream.cycles(); ++c)
                slot_pairs += stream.flatK(c, l, j) >= 0;
            max_slot_pairs = std::max(max_slot_pairs, slot_pairs);
        }
        for (std::int64_t c = 0; c < stream.cycles(); ++c) {
            for (int l = 0; l < stream.lanes(); ++l) {
                if (stream.flatK(c, l, j) >= 0) {
                    ++entries;
                    break;
                }
            }
        }
        max_col_entries = std::max(max_col_entries, entries);
    }
    const int bbuf_depth = 1 + cfg.a.d1;
    EXPECT_GE(dual.cycles,
              (max_col_entries + bbuf_depth - 1) / bbuf_depth);
    EXPECT_GE(dual.cycles, max_slot_pairs);
}

TEST(DualAsync, RecordedOpsCoverEveryEffectualPair)
{
    Rng rng(76);
    auto a = randomSparse(4, 256, 0.4, rng);
    auto b = randomSparse(256, 16, 0.7, rng);
    const auto cfg = RoutingConfig::sparseAB(2, 1, 1, 2, 1, 1, true);
    auto dual = runDual(a, b, cfg, 9.0, true);
    EXPECT_EQ(static_cast<std::int64_t>(dual.ops.size()),
              dual.effectualPairs);
    auto got = replayDualSchedule(dual.ops, a, b, 0, 0, kShape);
    auto want = referenceTile(a, b, 0, 0, kShape);
    EXPECT_EQ(got, want);
}

TEST(DualAsync, AllZeroTileFinishesInstantly)
{
    MatrixI8 a(4, 128);
    Rng rng(77);
    auto b = randomSparse(128, 16, 0.5, rng);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    auto dual = runDual(a, b, cfg, 9.0);
    EXPECT_EQ(dual.cycles, 0);
    EXPECT_EQ(dual.effectualPairs, 0);
}

TEST(DualAsync, WiderAWindowNeverHurts)
{
    Rng rng(78);
    auto a = randomSparse(4, 768, 0.5, rng);
    auto b = randomSparse(768, 16, 0.8, rng);
    std::int64_t prev = std::numeric_limits<std::int64_t>::max();
    for (int da1 : {0, 1, 2, 3}) {
        const auto cfg =
            RoutingConfig::sparseAB(da1, 0, 0, 2, 0, 1, true);
        auto dual = runDual(a, b, cfg, 16.0);
        EXPECT_LE(dual.cycles, prev) << "da1 " << da1;
        prev = dual.cycles;
    }
}

TEST(DualAsyncDeathTest, MissingStreamPanics)
{
    Rng rng(79);
    auto a = randomSparse(4, 128, 0.5, rng);
    auto b = randomSparse(128, 16, 0.5, rng);
    TileViewA va(a, kShape, 0);
    TileViewB vb(b, kShape, 0);
    Shuffler sh(false, kShape.k0);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, false);
    EXPECT_DEATH(scheduleDual(va, vb, cfg, sh, nullptr, 9.0, false),
                 "needs the B");
}

} // namespace
} // namespace griffin
