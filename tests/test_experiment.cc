/**
 * @file
 * Tests for the experiment registry (runtime/experiment.hh):
 * registration and lookup, duplicate-name rejection, list/describe
 * output, fidelity-flag resolution, --grid-shard parsing, fleet-shard
 * job slicing (shard concatenation == unsharded expansion), and
 * non-rectangular grids via SweepSpec::jobFilter.
 *
 * The registry in the core library starts empty — the paper
 * experiments register from bench/experiments/, which only
 * griffin_bench links — so these tests own every entry they see.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "runtime/experiment.hh"
#include "runtime/result_sink.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

ExperimentPlan
tinyPlan(const RunOptions &)
{
    ExperimentPlan plan;
    plan.base.archs = {sparseBStar()};
    plan.base.networks = {networkByName("alexnet")};
    plan.base.categories = {DnnCategory::B};
    return plan;
}

std::vector<Table>
tinyRender(const ExperimentContext &ctx)
{
    Table t("tiny", {"arch", "speedup"});
    if (ctx.sweep != nullptr)
        t.addRow({ctx.spec->archs[0].name,
                  Table::num(ctx.archGeomean(0))});
    return {t};
}

ExperimentPlan
axesPlan(const RunOptions &)
{
    ExperimentPlan plan;
    plan.grid.axis("weight_lane_bias", {0.2, 0.8})
        .axis("arch", {"Sparse.B*"})
        .axis("category", {"b"});
    plan.base.networks = {networkByName("alexnet")};
    plan.lockedAxes = {"arch"};
    return plan;
}

/** Register the shared fixture experiments exactly once. */
bool
registerFixtures()
{
    registerExperiment({"zz_tiny", "a tiny sweep experiment",
                        /*defaultSample=*/0.02, /*defaultRowCap=*/8,
                        tinyPlan, tinyRender});
    registerExperiment({"aa_static", "a render-only experiment",
                        /*defaultSample=*/0.04, /*defaultRowCap=*/48,
                        nullptr, tinyRender});
    registerExperiment({"zz_axes", "a sweep with an options axis",
                        /*defaultSample=*/0.02, /*defaultRowCap=*/8,
                        axesPlan, tinyRender});
    return true;
}

const bool fixtures = registerFixtures();

// ---- registry -------------------------------------------------------

TEST(ExperimentRegistry, LookupFindsRegisteredExperiments)
{
    ASSERT_TRUE(fixtures);
    const Experiment *tiny = findExperiment("zz_tiny");
    ASSERT_NE(tiny, nullptr);
    EXPECT_EQ(tiny->description, "a tiny sweep experiment");
    EXPECT_EQ(tiny->defaultSample, 0.02);
    EXPECT_EQ(tiny->defaultRowCap, 8);
    EXPECT_NE(findExperiment("aa_static"), nullptr);
    EXPECT_EQ(findExperiment("no_such_experiment"), nullptr);
}

TEST(ExperimentRegistry, RegistryIsNameSorted)
{
    const auto &experiments = experimentRegistry();
    ASSERT_GE(experiments.size(), 2u);
    for (std::size_t i = 1; i < experiments.size(); ++i)
        EXPECT_LT(experiments[i - 1].name, experiments[i].name);
}

TEST(ExperimentRegistryDeathTest, DuplicateNameIsFatal)
{
    EXPECT_EXIT(registerExperiment({"zz_tiny", "again", 0.02, 8,
                                    tinyPlan, tinyRender}),
                testing::ExitedWithCode(exitUsageError), "registered twice");
}

TEST(ExperimentRegistryDeathTest, MissingNameOrRenderIsFatal)
{
    EXPECT_EXIT(registerExperiment({"", "anonymous", 0.02, 8, nullptr,
                                    tinyRender}),
                testing::ExitedWithCode(exitUsageError), "needs a name");
    EXPECT_EXIT(registerExperiment({"zz_norender", "no render", 0.02,
                                    8, nullptr, nullptr}),
                testing::ExitedWithCode(exitUsageError), "no render");
}

// ---- list / describe ------------------------------------------------

TEST(ExperimentList, TableNamesEveryExperimentWithJobCounts)
{
    const Table t = experimentListTable();
    ASSERT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.rows(), experimentRegistry().size());
    bool saw_tiny = false;
    bool saw_static = false;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        if (t.cell(r, 0) == "zz_tiny") {
            saw_tiny = true;
            EXPECT_EQ(t.cell(r, 1), "1"); // 1 arch x 1 net x 1 cat
            EXPECT_EQ(t.cell(r, 2), "a tiny sweep experiment");
        }
        if (t.cell(r, 0) == "aa_static") {
            saw_static = true;
            EXPECT_EQ(t.cell(r, 1), "-"); // render-only: no sweep
        }
    }
    EXPECT_TRUE(saw_tiny);
    EXPECT_TRUE(saw_static);
}

TEST(ExperimentDescribe, ReportsDefaultsAndGridShape)
{
    const auto text = describeExperiment(*findExperiment("zz_tiny"));
    EXPECT_NE(text.find("zz_tiny — a tiny sweep experiment"),
              std::string::npos);
    EXPECT_NE(text.find("--sample 0.02 --rowcap 8"),
              std::string::npos);
    EXPECT_NE(text.find("1 archs x 1 networks x 1 categories"),
              std::string::npos);

    const auto static_text =
        describeExperiment(*findExperiment("aa_static"));
    EXPECT_NE(static_text.find("render-only"), std::string::npos);
}

// ---- fidelity flags -------------------------------------------------

TEST(ExperimentFlags, SentinelFallsBackToExperimentDefaults)
{
    Cli cli("test");
    addFidelityFlags(cli);
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    const auto run = resolveFidelity(cli, 0.02, 8);
    EXPECT_EQ(run.sim.sampleFraction, 0.02);
    EXPECT_EQ(run.rowCap, 8);
    EXPECT_EQ(run.seed, 1u);
    EXPECT_EQ(run.weightLaneBias, 0.5);
}

TEST(ExperimentFlags, ExplicitFlagsOverrideDefaults)
{
    Cli cli("test");
    addFidelityFlags(cli);
    const char *argv[] = {"prog", "--sample", "0.5", "--rowcap", "16",
                          "--seed", "7", "--lanebias", "0.25"};
    cli.parse(9, argv);
    const auto run = resolveFidelity(cli, 0.02, 8);
    EXPECT_EQ(run.sim.sampleFraction, 0.5);
    EXPECT_EQ(run.rowCap, 16);
    EXPECT_EQ(run.seed, 7u);
    EXPECT_EQ(run.weightLaneBias, 0.25);
}

// ---- shard spec parsing ---------------------------------------------

TEST(ShardSpec, ParsesIndexAndCount)
{
    std::size_t index = 99;
    std::size_t count = 99;
    parseShardSpec("", index, count);
    EXPECT_EQ(index, 0u);
    EXPECT_EQ(count, 1u);
    parseShardSpec("2/5", index, count);
    EXPECT_EQ(index, 2u);
    EXPECT_EQ(count, 5u);
}

TEST(ShardSpecDeathTest, MalformedSpecsAreFatal)
{
    std::size_t index = 0;
    std::size_t count = 1;
    for (const char *bad : {"3", "a/b", "1/", "/2", "2/2", "5/3",
                            "1/0", "1/2x"})
        EXPECT_EXIT(parseShardSpec(bad, index, count),
                    testing::ExitedWithCode(exitUsageError), "grid-shard")
            << bad;
}

// ---- fleet sharding of the job list ---------------------------------

SweepSpec
shardableSpec()
{
    SweepSpec spec;
    spec.archs = {sparseBStar(), sparseAStar()};
    spec.networks = {networkByName("alexnet"),
                     networkByName("googlenet")};
    spec.categories = {DnnCategory::B, DnnCategory::A};
    return spec;
}

TEST(FleetShard, ContiguousShardsConcatenateToUnshardedOrder)
{
    const auto all = expandSweep(shardableSpec());
    ASSERT_EQ(all.size(), 8u);
    for (std::size_t n = 1; n <= all.size() + 1; ++n) {
        std::vector<SweepJob> concat;
        for (std::size_t i = 0; i < n; ++i) {
            auto spec = shardableSpec();
            spec.shardIndex = i;
            spec.shardCount = n;
            const auto shard = expandSweep(spec);
            concat.insert(concat.end(), shard.begin(), shard.end());
        }
        ASSERT_EQ(concat.size(), all.size()) << n << " shards";
        for (std::size_t j = 0; j < all.size(); ++j) {
            EXPECT_EQ(concat[j].archIndex, all[j].archIndex);
            EXPECT_EQ(concat[j].networkIndex, all[j].networkIndex);
            EXPECT_EQ(concat[j].categoryIndex, all[j].categoryIndex);
            EXPECT_EQ(concat[j].optionsIndex, all[j].optionsIndex);
        }
    }
}

TEST(FleetShard, ShardsAreBalancedWithinOne)
{
    for (std::size_t n : {2u, 3u, 5u, 7u}) {
        std::size_t min_size = SIZE_MAX;
        std::size_t max_size = 0;
        for (std::size_t i = 0; i < n; ++i) {
            auto spec = shardableSpec();
            spec.shardIndex = i;
            spec.shardCount = n;
            const auto size = expandSweep(spec).size();
            min_size = std::min(min_size, size);
            max_size = std::max(max_size, size);
        }
        EXPECT_LE(max_size - min_size, 1u) << n << " shards";
    }
}

TEST(FleetShardDeathTest, OutOfRangeShardIsFatal)
{
    auto spec = shardableSpec();
    spec.shardIndex = 3;
    spec.shardCount = 3;
    EXPECT_EXIT(expandSweep(spec), testing::ExitedWithCode(exitUsageError),
                "out of range");
    spec.shardIndex = 0;
    spec.shardCount = 0;
    EXPECT_EXIT(expandSweep(spec), testing::ExitedWithCode(exitUsageError),
                "shard count");
}

// ---- job filter -----------------------------------------------------

TEST(JobFilter, DropsRejectedJobsBeforeSharding)
{
    auto spec = shardableSpec();
    // Non-rectangular pairing: each arch only in its own category.
    spec.jobFilter = [](const SweepJob &job) {
        return job.archIndex == job.categoryIndex;
    };
    const auto jobs = expandSweep(spec);
    ASSERT_EQ(jobs.size(), 4u);
    for (const auto &job : jobs)
        EXPECT_EQ(job.archIndex, job.categoryIndex);

    // Shards slice the filtered list.
    std::vector<SweepJob> concat;
    for (std::size_t i = 0; i < 3; ++i) {
        auto shard_spec = spec;
        shard_spec.shardIndex = i;
        shard_spec.shardCount = 3;
        const auto shard = expandSweep(shard_spec);
        concat.insert(concat.end(), shard.begin(), shard.end());
    }
    ASSERT_EQ(concat.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j)
        EXPECT_EQ(concat[j].networkIndex, jobs[j].networkIndex);
}

// ---- end-to-end runExperiment ---------------------------------------

TEST(RunExperiment, RenderSeesSweepAndShardedRunsSkipTables)
{
    const Experiment &exp = *findExperiment("zz_tiny");
    ExperimentRunConfig config;
    config.run.sim.sampleFraction = 0.02;
    config.run.sim.minSampledTiles = 4;
    config.run.rowCap = 8;
    const auto outcome = runExperiment(exp, config);
    ASSERT_TRUE(outcome.hasSweep);
    ASSERT_EQ(outcome.tables.size(), 1u);
    EXPECT_EQ(outcome.tables[0].cell(0, 0), "Sparse.B*");
    ASSERT_EQ(outcome.sweep.results().size(), 1u);

    // The same run sharded 2-ways: tables suppressed, and the two
    // shards' rows concatenate to the unsharded row list.
    std::vector<ResultRow> concat;
    for (std::size_t i = 0; i < 2; ++i) {
        auto shard_config = config;
        shard_config.shardIndex = i;
        shard_config.shardCount = 2;
        const auto shard = runExperiment(exp, shard_config);
        EXPECT_TRUE(shard.tables.empty());
        const auto rows = sweepRows(shard.sweep, exp.name);
        concat.insert(concat.end(), rows.begin(), rows.end());
    }
    std::ostringstream sharded;
    writeJsonLines(sharded, concat);
    std::ostringstream unsharded;
    writeJsonLines(unsharded, sweepRows(outcome.sweep, exp.name));
    EXPECT_EQ(sharded.str(), unsharded.str());
}

TEST(RunExperiment, GridOverrideReplacesAxes)
{
    const Experiment &exp = *findExperiment("zz_tiny");
    ExperimentRunConfig config;
    config.run.sim.sampleFraction = 0.02;
    config.run.sim.minSampledTiles = 4;
    config.run.rowCap = 8;
    config.gridOverride = "seed=1..3";
    const auto outcome = runExperiment(exp, config);
    EXPECT_EQ(outcome.sweep.results().size(), 3u);
    EXPECT_EQ(outcome.spec.optionVariants.size(), 3u);
}

TEST(RunExperiment, GridOverrideMergesIntoTheOwnAxes)
{
    // zz_axes already sweeps weight_lane_bias (2 values); the override
    // replaces that axis's values in place and appends a seed axis, so
    // the expansion stays a single merged grid with full coordinates.
    const Experiment &exp = *findExperiment("zz_axes");
    ExperimentRunConfig config;
    config.run.sim.sampleFraction = 0.02;
    config.run.sim.minSampledTiles = 4;
    config.run.rowCap = 8;
    config.gridOverride = "weight_lane_bias=0.5,seed=1..2";
    const auto outcome = runExperiment(exp, config);
    ASSERT_EQ(outcome.spec.optionVariants.size(), 2u);
    EXPECT_EQ(outcome.spec.optionVariants[0].weightLaneBias, 0.5);
    EXPECT_EQ(outcome.spec.optionVariants[0].seed, 1u);
    EXPECT_EQ(outcome.spec.optionVariants[1].seed, 2u);
    ASSERT_EQ(outcome.spec.optionCoords.size(), 2u);
    EXPECT_EQ(outcome.spec.optionCoords[0],
              (std::vector<AxisCoordinate>{{"weight_lane_bias", "0.5"},
                                           {"seed", "1"}}));
}

TEST(RunExperimentDeathTest, OverridingALockedAxisIsFatal)
{
    const Experiment &exp = *findExperiment("zz_axes");
    ExperimentRunConfig config;
    config.run.sim.sampleFraction = 0.02;
    config.run.sim.minSampledTiles = 4;
    config.run.rowCap = 8;
    config.gridOverride = "arch=Griffin";
    EXPECT_EXIT(runExperiment(exp, config),
                testing::ExitedWithCode(exitUsageError), "structural");
}

TEST(RunExperiment, RenderOnlyExperimentHasNoSweep)
{
    const Experiment &exp = *findExperiment("aa_static");
    const auto outcome = runExperiment(exp, ExperimentRunConfig{});
    EXPECT_FALSE(outcome.hasSweep);
    ASSERT_EQ(outcome.tables.size(), 1u);
    EXPECT_EQ(outcome.tables[0].rows(), 0u);
}

} // namespace
} // namespace griffin
