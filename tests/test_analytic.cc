/**
 * @file
 * Tests for the analytical speedup model, including verification
 * against the cycle-level simulator (the paper's own methodology:
 * "an analytical model, verified by a simulator").
 */

#include <gtest/gtest.h>

#include "arch/presets.hh"
#include "common/rng.hh"
#include "model/analytic.hh"
#include "sim/gemm_sim.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

const TileShape kShape{};

TEST(Analytic, DenseIsExactlyOne)
{
    EXPECT_DOUBLE_EQ(
        analyticSpeedup(RoutingConfig::dense(), kShape, 0.5, 0.5), 1.0);
}

TEST(Analytic, ZeroSparsityGivesNoSpeedup)
{
    EXPECT_NEAR(analyticSpeedup(RoutingConfig::sparseB(4, 0, 1, true),
                                kShape, 0.0, 0.0),
                1.0, 1e-9);
}

TEST(Analytic, FullSparsityHitsWindowBound)
{
    EXPECT_DOUBLE_EQ(analyticSpeedup(RoutingConfig::sparseB(4, 0, 0,
                                                            false),
                                     kShape, 0.0, 1.0),
                     5.0);
    EXPECT_DOUBLE_EQ(
        analyticSpeedup(RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true),
                        kShape, 1.0, 1.0),
        9.0);
}

TEST(Analytic, NeverExceedsWindowOrIdealBound)
{
    for (double bsp : {0.3, 0.6, 0.8, 0.95}) {
        for (int d1 = 2; d1 <= 6; ++d1) {
            const auto cfg =
                RoutingConfig::sparseB(d1, 0, 1, false);
            const double s =
                analyticSpeedup(cfg, kShape, 0.0, bsp);
            EXPECT_LE(s, 1.0 + d1 + 1e-9);
            EXPECT_GE(s, 1.0 - 1e-9);
        }
    }
}

TEST(Analytic, MonotoneInLookahead)
{
    double prev = 0.0;
    for (int d1 = 2; d1 <= 7; ++d1) {
        const double s = analyticSpeedup(
            RoutingConfig::sparseB(d1, 0, 0, false), kShape, 0.0, 0.8);
        EXPECT_GE(s + 1e-9, prev) << "d1 " << d1;
        prev = s;
    }
}

TEST(Analytic, BorrowDistancesImprove)
{
    const double plain = analyticSpeedup(
        RoutingConfig::sparseB(4, 0, 0, false), kShape, 0.0, 0.8);
    const double with_d3 = analyticSpeedup(
        RoutingConfig::sparseB(4, 0, 1, false), kShape, 0.0, 0.8);
    const double with_d2 = analyticSpeedup(
        RoutingConfig::sparseB(4, 2, 0, false), kShape, 0.0, 0.8);
    EXPECT_GT(with_d3, plain);
    EXPECT_GT(with_d2, plain);
}

TEST(Analytic, BinomialMaxMedianSanity)
{
    // One group: median of the binomial itself.
    EXPECT_EQ(binomialMaxMedian(10, 0.5, 1), 5);
    // Many groups push the max toward the tail.
    EXPECT_GT(binomialMaxMedian(10, 0.5, 1000), 7);
    // Degenerate cases.
    EXPECT_EQ(binomialMaxMedian(10, 0.0, 64), 0);
    EXPECT_EQ(binomialMaxMedian(10, 1.0, 64), 10);
}

/** The paper's verification: model vs cycle simulator. */
struct VerifyCase
{
    RoutingConfig cfg;
    double asp;
    double bsp;
    DnnCategory cat;
};

class AnalyticVsSimulator : public testing::TestWithParam<VerifyCase>
{
};

TEST_P(AnalyticVsSimulator, AgreesWithinBand)
{
    const auto &c = GetParam();
    Rng rng(0xabcd);
    auto a = randomSparse(64, 768, c.asp, rng);
    auto b = randomSparse(768, 32, c.bsp, rng);
    ArchConfig arch = denseBaseline();
    arch.name = "dse-point";
    arch.routing = c.cfg;
    arch.mem.dramGBs = 1e6; // isolate the datapath
    const auto sim = simulateGemm(a, b, arch, c.cat);
    const double predicted =
        analyticSpeedup(c.cfg, kShape, c.asp, c.bsp);
    // The model ignores edge tiles and the exact arbitration chain;
    // the paper only needs it to rank design points, so a 30%
    // relative band is the contract.
    EXPECT_NEAR(predicted / sim.speedup(), 1.0, 0.30)
        << c.cfg.str() << " predicted " << predicted << " simulated "
        << sim.speedup();
}

INSTANTIATE_TEST_SUITE_P(
    DesignPoints, AnalyticVsSimulator,
    testing::Values(
        VerifyCase{RoutingConfig::sparseB(4, 0, 1, false), 0.0, 0.8,
                   DnnCategory::B},
        VerifyCase{RoutingConfig::sparseB(2, 1, 1, false), 0.0, 0.8,
                   DnnCategory::B},
        VerifyCase{RoutingConfig::sparseB(6, 0, 0, false), 0.0, 0.9,
                   DnnCategory::B},
        VerifyCase{RoutingConfig::sparseB(4, 0, 0, false), 0.0, 0.5,
                   DnnCategory::B},
        VerifyCase{RoutingConfig::sparseA(2, 1, 0, false), 0.5, 0.0,
                   DnnCategory::A},
        VerifyCase{RoutingConfig::sparseA(3, 1, 0, false), 0.6, 0.0,
                   DnnCategory::A},
        VerifyCase{RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, false),
                   0.5, 0.8, DnnCategory::AB}));

} // namespace
} // namespace griffin
