/**
 * @file
 * Tests for convolution-to-GEMM lowering against naive convolution.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/im2col.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

/** Fill a feature map with deterministic pseudo-random INT8 values. */
FeatureMap
randomMap(int c, int h, int w, Rng &rng, double sparsity = 0.0)
{
    FeatureMap fm(c, h, w);
    for (int ci = 0; ci < c; ++ci)
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                if (!rng.bernoulli(sparsity))
                    fm.at(ci, y, x) = rng.nonzeroInt8();
    return fm;
}

/** Run conv both ways and compare every output element. */
void
checkConvAgreement(const ConvShape &shape, Rng &rng, double sparsity = 0.0)
{
    auto input = randomMap(shape.cin, shape.h, shape.w, rng, sparsity);
    auto kernels = randomSparse(
        shape.cout,
        static_cast<std::size_t>(shape.cin / shape.groups) * shape.r *
            shape.s,
        sparsity, rng);

    auto ref = convRef(input, kernels, shape);

    const int ng = shape.cout / shape.groups;
    for (int g = 0; g < shape.groups; ++g) {
        auto a = im2col(input, shape, g);
        auto b = kernelMatrix(kernels, shape, g);
        auto c = matmulRef(a, b);
        ASSERT_EQ(c.rows(), static_cast<std::size_t>(shape.gemmM()));
        ASSERT_EQ(c.cols(), static_cast<std::size_t>(ng));
        for (std::size_t pix = 0; pix < c.rows(); ++pix)
            for (int n = 0; n < ng; ++n)
                EXPECT_EQ(c.at(pix, n),
                          ref.at(static_cast<std::size_t>(g) * ng + n, pix))
                    << "group " << g << " pixel " << pix << " ch " << n;
    }
}

TEST(Im2col, OneByOneConvIsPlainGemm)
{
    Rng rng(41);
    ConvShape s{.cin = 8, .h = 5, .w = 5, .r = 1, .s = 1, .cout = 6};
    checkConvAgreement(s, rng);
}

TEST(Im2col, ThreeByThreeSamePadding)
{
    Rng rng(42);
    ConvShape s{.cin = 3, .h = 8, .w = 8, .r = 3, .s = 3, .cout = 4,
                .stride = 1, .pad = 1};
    EXPECT_EQ(s.outH(), 8);
    EXPECT_EQ(s.outW(), 8);
    checkConvAgreement(s, rng);
}

TEST(Im2col, StridedConvolution)
{
    Rng rng(43);
    ConvShape s{.cin = 4, .h = 11, .w = 11, .r = 3, .s = 3, .cout = 8,
                .stride = 2, .pad = 0};
    EXPECT_EQ(s.outH(), 5);
    checkConvAgreement(s, rng);
}

TEST(Im2col, AsymmetricFilterAndInput)
{
    Rng rng(44);
    ConvShape s{.cin = 2, .h = 7, .w = 9, .r = 1, .s = 7, .cout = 3,
                .stride = 1, .pad = 3};
    checkConvAgreement(s, rng);
}

TEST(Im2col, GroupedConvolution)
{
    Rng rng(45);
    ConvShape s{.cin = 8, .h = 6, .w = 6, .r = 3, .s = 3, .cout = 8,
                .stride = 1, .pad = 1, .groups = 4};
    checkConvAgreement(s, rng);
}

TEST(Im2col, DepthwiseConvolution)
{
    Rng rng(46);
    ConvShape s{.cin = 6, .h = 6, .w = 6, .r = 3, .s = 3, .cout = 6,
                .stride = 1, .pad = 1, .groups = 6};
    EXPECT_EQ(s.gemmK(), 9); // 1 channel x 3 x 3 per group
    checkConvAgreement(s, rng);
}

TEST(Im2col, SparseInputsStillAgree)
{
    Rng rng(47);
    ConvShape s{.cin = 4, .h = 8, .w = 8, .r = 3, .s = 3, .cout = 8,
                .stride = 1, .pad = 1};
    checkConvAgreement(s, rng, 0.6);
}

TEST(Im2col, MacCountMatchesClosedForm)
{
    ConvShape s{.cin = 64, .h = 56, .w = 56, .r = 3, .s = 3, .cout = 64,
                .stride = 1, .pad = 1};
    EXPECT_EQ(s.macs(),
              static_cast<std::int64_t>(56) * 56 * 64 * 3 * 3 * 64);
    ConvShape dw{.cin = 32, .h = 14, .w = 14, .r = 3, .s = 3, .cout = 32,
                 .stride = 1, .pad = 1, .groups = 32};
    EXPECT_EQ(dw.macs(), static_cast<std::int64_t>(14) * 14 * 9 * 32);
}

TEST(Im2colDeathTest, InvalidShapesAreFatal)
{
    FeatureMap fm(1, 4, 4);
    MatrixI8 kernels(1, 9);
    ConvShape bad_stride{.cin = 1, .h = 4, .w = 4, .r = 3, .s = 3,
                         .cout = 1, .stride = 0};
    EXPECT_EXIT(convRef(fm, kernels, bad_stride),
                testing::ExitedWithCode(exitUsageError), "stride");
    ConvShape bad_groups{.cin = 3, .h = 4, .w = 4, .r = 1, .s = 1,
                         .cout = 4, .stride = 1, .pad = 0, .groups = 2};
    EXPECT_EXIT(im2col(fm, bad_groups), testing::ExitedWithCode(exitUsageError),
                "groups");
    ConvShape big_filter{.cin = 1, .h = 4, .w = 4, .r = 9, .s = 9,
                         .cout = 1};
    EXPECT_EXIT(big_filter.validate(), testing::ExitedWithCode(exitUsageError),
                "larger than");
}

TEST(FeatureMap, PaddingReadsZero)
{
    FeatureMap fm(2, 3, 3);
    fm.at(1, 2, 2) = 9;
    EXPECT_EQ(fm.atOrZero(1, 2, 2), 9);
    EXPECT_EQ(fm.atOrZero(1, -1, 0), 0);
    EXPECT_EQ(fm.atOrZero(1, 0, 3), 0);
    EXPECT_EQ(fm.atOrZero(2, 0, 0), 0);
}

} // namespace
} // namespace griffin
