/**
 * @file
 * Tests for deterministic random number generation.
 */

#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace griffin {
namespace {

TEST(Mt64, BitIdenticalToStdMt19937_64)
{
    // The block-buffered engine (SIMD-tempered refill) must reproduce
    // std::mt19937_64 exactly — [rand.eng.mers] pins both — across
    // several refill boundaries (312 words each) and several seeds.
    // Every historical baseline byte rests on this equivalence.
    for (const std::uint64_t seed :
         {std::uint64_t{0}, std::uint64_t{1}, Rng::defaultSeed,
          std::uint64_t{0xFFFFFFFFFFFFFFFFULL}}) {
        std::mt19937_64 ref(seed);
        Mt64 engine(seed);
        for (int i = 0; i < 312 * 4 + 7; ++i)
            ASSERT_EQ(engine(), ref())
                << "seed " << seed << " draw " << i;
    }
}

TEST(Mt64, MatchesTheStandardTenThousandthDraw)
{
    // [rand.eng.mers] names the 10000th consecutive value of a
    // default-seeded mt19937_64: 9981545732273789042.
    std::mt19937_64 std_default; // default seed 5489
    Mt64 engine(5489);
    std::uint64_t ours = 0, stds = 0;
    for (int i = 0; i < 10000; ++i) {
        ours = engine();
        stds = std_default();
    }
    EXPECT_EQ(ours, 9981545732273789042ULL);
    EXPECT_EQ(stds, ours);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1'000'000), b.uniformInt(0, 1'000'000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.uniformInt(0, 1 << 30) != b.uniformInt(0, 1 << 30);
    EXPECT_GT(differing, 0);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(7);
    EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, Uniform01HalfOpen)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
    // Out-of-range probabilities are clamped, not errors.
    EXPECT_TRUE(rng.bernoulli(2.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
}

TEST(Rng, BernoulliRateIsRoughlyP)
{
    Rng rng(5);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.8);
    const double rate = static_cast<double>(hits) / trials;
    EXPECT_NEAR(rate, 0.8, 0.02);
}

TEST(Rng, NonzeroInt8NeverZeroAndCoversSignRange)
{
    Rng rng(9);
    bool saw_negative = false, saw_positive = false;
    std::set<int> values;
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.nonzeroInt8();
        EXPECT_NE(v, 0);
        EXPECT_GE(v, -128);
        EXPECT_LE(v, 127);
        saw_negative |= v < 0;
        saw_positive |= v > 0;
        values.insert(v);
    }
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_positive);
    // 5000 draws over 255 values should cover most of the range.
    EXPECT_GT(values.size(), 200u);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(13);
    std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto original = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, original);
}

TEST(Rng, MixSeedIsDeterministicAndSaltSensitive)
{
    EXPECT_EQ(Rng::mixSeed(1, 2), Rng::mixSeed(1, 2));
    EXPECT_NE(Rng::mixSeed(1, 2), Rng::mixSeed(1, 3));
    EXPECT_NE(Rng::mixSeed(1, 2), Rng::mixSeed(2, 2));
    // Sum-based mixing must not collapse (seed, salt) pairs with equal
    // sums into the same stream seed via the string path.
    EXPECT_NE(Rng::mixSeed(1, std::string("ab")),
              Rng::mixSeed(1, std::string("ba")));
    EXPECT_EQ(Rng::mixSeed(42, std::string("Griffin")),
              Rng::mixSeed(42, std::string("Griffin")));
}

TEST(Rng, ForkIsIndependentOfParentContinuation)
{
    Rng parent(77);
    Rng child = parent.fork();
    // The child stream must be reproducible: rebuilding the same way
    // gives the same values.
    Rng parent2(77);
    Rng child2 = parent2.fork();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(child.uniformInt(0, 1 << 20), child2.uniformInt(0, 1 << 20));
}

} // namespace
} // namespace griffin
