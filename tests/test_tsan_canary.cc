/**
 * @file
 * Seeded-race canary for the ThreadSanitizer CI job.
 *
 * A sanitizer gate that never fires is indistinguishable from one
 * that is wired up wrong (not instrumented, report swallowed, exit
 * code ignored).  This suite plants a textbook data race — two
 * threads bumping a plain int — in a child process and asserts TSan
 * actually kills it with a "data race" report.  If that stops
 * happening, the tsan job's green is a lie and this test turns it
 * red.
 *
 * In uninstrumented builds (the default local configuration and every
 * non-TSan CI job) the canary skips: running the race for real would
 * be undefined behavior nobody is watching for.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#if defined(__SANITIZE_THREAD__)
#define GRIFFIN_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRIFFIN_TSAN_ACTIVE 1
#endif
#endif

namespace {

#ifdef GRIFFIN_TSAN_ACTIVE

/** Unsynchronized cross-thread increments: the canonical race.
 *  griffin-lint is about determinism, not data races, so no allow()
 *  is needed — but keep this function inside the canary only. */
int
racyCount()
{
    int counter = 0;
    std::thread a([&counter] {
        for (int i = 0; i < 100000; ++i)
            ++counter;
    });
    std::thread b([&counter] {
        for (int i = 0; i < 100000; ++i)
            ++counter;
    });
    a.join();
    b.join();
    return counter;
}

TEST(TsanCanaryDeathTest, SeededRaceIsDetected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // TSan exits with its `exitcode` option (default 66) once a
    // report fired, with or without halt_on_error.  A child that
    // exits 0 means the race went unreported — the gate is broken.
    EXPECT_EXIT(
        {
            racyCount();
            std::exit(0);
        },
        ::testing::ExitedWithCode(66), "ThreadSanitizer: data race");
}

#else

TEST(TsanCanary, SkippedWithoutThreadSanitizer)
{
    GTEST_SKIP()
        << "build is not TSan-instrumented; the seeded-race canary "
           "only runs under -fsanitize=thread (see the tsan CI job)";
}

#endif

} // namespace
