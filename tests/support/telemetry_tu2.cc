/**
 * @file
 * Second translation unit for the cross-TU telemetry span test.
 *
 * Records a span whose name literal is spelled here, in a different
 * object file from test_telemetry.cc's identical literal.  Whether
 * the linker folds the two literals into one address is a build
 * detail (ICF, -fmerge-constants, LTO); the stage breakdown must
 * merge them either way because aggregation keys on the name's
 * *content*, never its pointer.
 */

#include "runtime/telemetry.hh"

namespace griffin_test_support {

void
recordCrossTuSpan()
{
    griffin::ScopedSpan span("cross_tu_stage");
}

} // namespace griffin_test_support
