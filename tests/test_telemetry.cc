/**
 * @file
 * Tests for the telemetry layer: metric registry semantics, span
 * recording across modes and threads, Chrome trace export, the
 * metrics JSON line, and the BENCH_perf.json schema round-trip.
 *
 * Telemetry state is process-global; every test that records spans
 * restores Mode::Off and clears the buffers so tests stay independent
 * in any order.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "runtime/perf_report.hh"
#include "runtime/result_sink.hh"
#include "runtime/telemetry.hh"

namespace griffin_test_support {
// tests/support/telemetry_tu2.cc — spells the "cross_tu_stage"
// literal in its own object file.
void recordCrossTuSpan();
} // namespace griffin_test_support

namespace griffin {
namespace {

/** RAII guard: whatever a test does, later tests start from Off and
 *  empty buffers. */
struct TelemetryReset
{
    TelemetryReset() { reset(); }
    ~TelemetryReset() { reset(); }

    static void
    reset()
    {
        Telemetry::setMode(Telemetry::Mode::Off);
        Telemetry::clear();
    }
};

TEST(MetricsRegistry, CountersGaugesHistogramsAreStable)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("jobs");
    c.add();
    c.add(4);
    EXPECT_EQ(reg.counter("jobs").value(), 5u);
    EXPECT_EQ(&reg.counter("jobs"), &c);

    reg.gauge("wall_ms").set(12.5);
    EXPECT_DOUBLE_EQ(reg.gauge("wall_ms").value(), 12.5);

    Histogram &h = reg.histogram("job_us");
    h.record(3);
    h.record(5);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);
    EXPECT_EQ(snap.sum, 8u);
    EXPECT_EQ(snap.min, 3u);
    EXPECT_EQ(snap.max, 5u);
    EXPECT_DOUBLE_EQ(snap.mean(), 4.0);

    reg.reset();
    EXPECT_EQ(reg.counter("jobs").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("wall_ms").value(), 0.0);
    EXPECT_EQ(reg.histogram("job_us").snapshot().count, 0u);
}

TEST(MetricsRegistry, SnapshotIsNameSorted)
{
    MetricsRegistry reg;
    reg.gauge("zeta").set(1.0);
    reg.counter("alpha").add();
    reg.histogram("mid").record(7);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "alpha");
    EXPECT_EQ(snap[1].name, "mid");
    EXPECT_EQ(snap[2].name, "zeta");
}

TEST(MetricsRegistry, PublishCacheStatsGaugesEveryField)
{
    MetricsRegistry reg;
    CacheStats stats;
    stats.hits = 9;
    stats.misses = 1;
    stats.entries = 4;
    stats.residentBytes = 1024;
    stats.evictions = 2;
    stats.loadedEntries = 3;
    stats.loadHits = 5;
    reg.publishCacheStats("c", stats);
    EXPECT_DOUBLE_EQ(reg.gauge("c.hits").value(), 9.0);
    EXPECT_DOUBLE_EQ(reg.gauge("c.misses").value(), 1.0);
    EXPECT_DOUBLE_EQ(reg.gauge("c.hit_rate").value(), 0.9);
    EXPECT_DOUBLE_EQ(reg.gauge("c.entries").value(), 4.0);
    EXPECT_DOUBLE_EQ(reg.gauge("c.resident_bytes").value(), 1024.0);
    EXPECT_DOUBLE_EQ(reg.gauge("c.evictions").value(), 2.0);
    EXPECT_DOUBLE_EQ(reg.gauge("c.loaded_entries").value(), 3.0);
    EXPECT_DOUBLE_EQ(reg.gauge("c.load_hits").value(), 5.0);
}

TEST(MetricsRegistryDeathTest, KindCollisionPanics)
{
    MetricsRegistry reg;
    reg.counter("shape");
    EXPECT_DEATH(reg.gauge("shape"),
                 "registered as two different kinds");
}

TEST(Histogram, BucketsArePowersOfTwo)
{
    Histogram h;
    h.record(0); // bucket 0
    h.record(1); // bucket 0
    h.record(2); // bucket 1
    h.record(3); // bucket 1
    h.record(4); // bucket 2
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.buckets[0], 2u);
    EXPECT_EQ(snap.buckets[1], 2u);
    EXPECT_EQ(snap.buckets[2], 1u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 4u);
}

TEST(Telemetry, OffModeRecordsNothing)
{
    TelemetryReset guard;
    {
        ScopedSpan span("tile_sim");
    }
    EXPECT_EQ(Telemetry::eventCount(), 0u);
    EXPECT_TRUE(Telemetry::stageBreakdown().empty());
}

TEST(Telemetry, AggregateModeKeepsTotalsButNoEvents)
{
    TelemetryReset guard;
    Telemetry::setMode(Telemetry::Mode::Aggregate);
    {
        ScopedSpan span("tile_sim");
    }
    {
        ScopedSpan span("tile_sim");
    }
    EXPECT_EQ(Telemetry::eventCount(), 0u);
    const auto stages = Telemetry::stageBreakdown();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].stage, "tile_sim");
    EXPECT_EQ(stages[0].count, 2u);
}

TEST(Telemetry, FullModeNestsSpansAndExportsChromeTrace)
{
    TelemetryReset guard;
    Telemetry::setMode(Telemetry::Mode::Full);
    {
        ScopedSpan outer("tile_sim");
        {
            ScopedSpan inner("b_schedule");
        }
    }
    EXPECT_EQ(Telemetry::eventCount(), 2u);

    std::ostringstream os;
    Telemetry::writeChromeTrace(os);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, error)) << error;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Find the two X events (skip thread_name metadata) and check the
    // inner span is contained within the outer one.
    const JsonValue *outer_ev = nullptr;
    const JsonValue *inner_ev = nullptr;
    for (const auto &e : events->items) {
        if (e.find("ph")->asString() != "X")
            continue;
        const auto &name = e.find("name")->asString();
        if (name == "tile_sim")
            outer_ev = &e;
        else if (name == "b_schedule")
            inner_ev = &e;
    }
    ASSERT_NE(outer_ev, nullptr);
    ASSERT_NE(inner_ev, nullptr);
    const double outer_ts = outer_ev->find("ts")->asDouble();
    const double outer_end =
        outer_ts + outer_ev->find("dur")->asDouble();
    const double inner_ts = inner_ev->find("ts")->asDouble();
    const double inner_end =
        inner_ts + inner_ev->find("dur")->asDouble();
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_end, outer_end);
    // Both spans ran on this thread, so they share a tid.
    EXPECT_EQ(outer_ev->find("tid")->asInt(),
              inner_ev->find("tid")->asInt());
}

TEST(Telemetry, ThreadsMergeIntoOneBreakdownButKeepOwnTids)
{
    TelemetryReset guard;
    Telemetry::setMode(Telemetry::Mode::Full);
    constexpr int threads = 4;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([] {
            ScopedSpan span("memory_model");
        });
    for (auto &w : workers)
        w.join();
    {
        ScopedSpan span("memory_model");
    }

    const auto stages = Telemetry::stageBreakdown();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].stage, "memory_model");
    EXPECT_EQ(stages[0].count, static_cast<std::uint64_t>(threads + 1));

    std::ostringstream os;
    Telemetry::writeChromeTrace(os);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, error)) << error;
    std::set<std::int64_t> tids;
    for (const auto &e : doc.find("traceEvents")->items)
        if (e.find("ph")->asString() == "X")
            tids.insert(e.find("tid")->asInt());
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(threads + 1));
}

TEST(Telemetry, SameSpanNameFromTwoTranslationUnitsIsOneStage)
{
    TelemetryReset guard;
    Telemetry::setMode(Telemetry::Mode::Aggregate);
    {
        ScopedSpan span("cross_tu_stage");
    }
    ::griffin_test_support::recordCrossTuSpan();

    // One stage, count 2 — even if the two TUs' identical literals
    // were NOT folded to one address by the linker.  Pointer-keyed
    // aggregation would report two entries (or one, depending on
    // build flags), making stage counts a build artifact.
    const auto stages = Telemetry::stageBreakdown();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].stage, "cross_tu_stage");
    EXPECT_EQ(stages[0].count, 2u);
}

TEST(Telemetry, ClearDropsEventsAndTotals)
{
    TelemetryReset guard;
    Telemetry::setMode(Telemetry::Mode::Full);
    {
        ScopedSpan span("reduce");
    }
    EXPECT_EQ(Telemetry::eventCount(), 1u);
    Telemetry::clear();
    EXPECT_EQ(Telemetry::eventCount(), 0u);
    EXPECT_TRUE(Telemetry::stageBreakdown().empty());
    // Mode survives clear().
    EXPECT_EQ(Telemetry::mode(), Telemetry::Mode::Full);
}

TEST(ResultSinkMetrics, MetricsJsonLineIsSortedAndParses)
{
    MetricsRegistry reg;
    reg.gauge("sweep.wall_ms").set(1.5);
    reg.counter("sweep.jobs").add(3);
    reg.histogram("pool.job_us").record(10);
    std::ostringstream os;
    writeMetricsJsonLine(os, reg);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, error)) << error;
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->members.size(), 3u);
    EXPECT_EQ(metrics->members[0].first, "pool.job_us");
    EXPECT_EQ(metrics->members[1].first, "sweep.jobs");
    EXPECT_EQ(metrics->members[2].first, "sweep.wall_ms");
    EXPECT_EQ(metrics->find("sweep.jobs")->asInt(), 3);
    EXPECT_DOUBLE_EQ(metrics->find("sweep.wall_ms")->asDouble(), 1.5);
    EXPECT_EQ(metrics->find("pool.job_us")->find("count")->asInt(), 1);
}

PerfDocument
samplePerfDocument()
{
    PerfDocument doc;
    doc.threads = 4;
    doc.sample = 0.02;
    doc.rowCap = 8;
    doc.seed = 1;
    doc.totalWallMs = 123.5;
    PerfEntry entry;
    entry.experiment = "fig5";
    entry.jobs = 144;
    entry.wallMs = 100.25;
    entry.jobsPerSec = 1436.4;
    entry.threadUtilization = 0.93;
    entry.poolSteals = 7;
    entry.poolBusyMs = 372.9;
    entry.stages.push_back({"b_schedule", 24144, 48086.8});
    entry.stages.push_back({"tile_sim", 6648, 48173.5});
    entry.scheduleCache.hits = 2012;
    entry.scheduleCache.misses = 22132;
    entry.worksetCache.hits = 6371;
    entry.worksetCache.misses = 277;
    doc.suite.push_back(std::move(entry));
    return doc;
}

TEST(PerfReport, WriteParsesBackIdentically)
{
    const PerfDocument doc = samplePerfDocument();
    std::ostringstream os;
    writePerfJson(os, doc);

    PerfDocument parsed;
    std::string error;
    ASSERT_TRUE(parsePerfDocument(os.str(), parsed, error)) << error;
    EXPECT_EQ(parsed.schemaVersion, perfSchemaVersion);
    EXPECT_EQ(parsed.threads, doc.threads);
    EXPECT_DOUBLE_EQ(parsed.sample, doc.sample);
    EXPECT_EQ(parsed.rowCap, doc.rowCap);
    EXPECT_EQ(parsed.seed, doc.seed);
    EXPECT_DOUBLE_EQ(parsed.totalWallMs, doc.totalWallMs);
    ASSERT_EQ(parsed.suite.size(), 1u);
    const PerfEntry &e = parsed.suite[0];
    EXPECT_EQ(e.experiment, "fig5");
    EXPECT_EQ(e.jobs, 144u);
    EXPECT_DOUBLE_EQ(e.wallMs, 100.25);
    EXPECT_EQ(e.poolSteals, 7u);
    ASSERT_EQ(e.stages.size(), 2u);
    EXPECT_EQ(e.stages[0].stage, "b_schedule");
    EXPECT_EQ(e.stages[0].count, 24144u);
    EXPECT_EQ(e.scheduleCache.hits, 2012u);
    EXPECT_EQ(e.scheduleCache.misses, 22132u);
    EXPECT_EQ(e.worksetCache.hits, 6371u);

    // Serialization of equal documents is deterministic.
    std::ostringstream again;
    writePerfJson(again, parsed);
    EXPECT_EQ(os.str(), again.str());
}

TEST(PerfReport, ValidationRejectsBadDocuments)
{
    PerfDocument parsed;
    std::string error;

    EXPECT_FALSE(parsePerfDocument("{not json", parsed, error));
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(parsePerfDocument("{}", parsed, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    EXPECT_FALSE(parsePerfDocument(
        R"({"schema": "something_else", "schema_version": 1})", parsed,
        error));
    EXPECT_NE(error.find("griffin_bench_perf"), std::string::npos);

    // A future schema version must be rejected, not half-read.
    std::ostringstream os;
    PerfDocument doc = samplePerfDocument();
    doc.schemaVersion = perfSchemaVersion + 1;
    writePerfJson(os, doc);
    EXPECT_FALSE(parsePerfDocument(os.str(), parsed, error));
    EXPECT_NE(error.find("schema_version"), std::string::npos);

    // A suite entry missing a required field fails the whole parse.
    EXPECT_FALSE(parsePerfDocument(
        R"({"schema": "griffin_bench_perf", "schema_version": 1,
            "threads": 1,
            "fidelity": {"sample": 0.02, "rowcap": 8, "seed": 1},
            "total_wall_ms": 1.0,
            "suite": [{"experiment": "fig5"}]})",
        parsed, error));
    EXPECT_NE(error.find("suite entry"), std::string::npos);
}

TEST(PerfReport, CompareRendersSummaryAndStageTables)
{
    const PerfDocument old_doc = samplePerfDocument();
    PerfDocument new_doc = samplePerfDocument();
    new_doc.suite[0].wallMs = 50.125; // 2x faster
    new_doc.suite[0].stages[0].totalMs = 24043.4;

    const auto tables = renderPerfCompare(old_doc, new_doc);
    ASSERT_EQ(tables.size(), 2u);
    EXPECT_EQ(tables[0].rows(), 1u);
    EXPECT_EQ(tables[0].cell(0, 0), "fig5");
    EXPECT_EQ(tables[0].cell(0, 3), "-50.0%");
    EXPECT_EQ(tables[1].rows(), 2u);
    EXPECT_EQ(tables[1].cell(0, 1), "b_schedule");
    EXPECT_EQ(tables[1].cell(0, 4), "-50.0%");
}

} // namespace
} // namespace griffin
