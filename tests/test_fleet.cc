/**
 * @file
 * Tests for the fleet subsystem: the lease-queue state machine
 * (grant/ack/expiry, work stealing, the exactly-once completion
 * invariant), the wire protocol's encode/decode round trip and its
 * rejection of malformed messages, and the TCP wrapper's loopback
 * framing.  Time is injected as nanoseconds, so every timeout case
 * here is deterministic — no sleeps, no real clocks.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/socket.hh"
#include "fleet/lease_queue.hh"
#include "fleet/protocol.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

constexpr std::uint64_t kTimeoutNs = 1000;

TEST(LeaseQueue, CarvesChunksPerExperimentWithoutSpanning)
{
    // 5 + 3 jobs in chunks of 2: the final chunk of each experiment
    // is short, and no chunk crosses the experiment boundary.
    LeaseQueue q({5, 3}, 2, kTimeoutNs);
    const auto &chunks = q.chunks();
    ASSERT_EQ(chunks.size(), 5u);
    EXPECT_EQ(chunks[0].experimentIndex, 0u);
    EXPECT_EQ(chunks[0].begin, 0u);
    EXPECT_EQ(chunks[0].end, 2u);
    EXPECT_EQ(chunks[1].begin, 2u);
    EXPECT_EQ(chunks[1].end, 4u);
    EXPECT_EQ(chunks[2].begin, 4u);
    EXPECT_EQ(chunks[2].end, 5u);
    EXPECT_EQ(chunks[3].experimentIndex, 1u);
    EXPECT_EQ(chunks[3].begin, 0u);
    EXPECT_EQ(chunks[3].end, 2u);
    EXPECT_EQ(chunks[4].begin, 2u);
    EXPECT_EQ(chunks[4].end, 3u);
    EXPECT_EQ(q.pendingChunks(), 5u);
    EXPECT_FALSE(q.complete());
}

TEST(LeaseQueueDeathTest, ZeroChunkJobsIsAUsageError)
{
    EXPECT_EXIT(LeaseQueue({4}, 0, kTimeoutNs),
                testing::ExitedWithCode(exitUsageError),
                "chunk size must be positive");
}

TEST(LeaseQueue, GrantAckDrivesCompletion)
{
    LeaseQueue q({3}, 2, kTimeoutNs);
    LeaseQueue::Grant a, b;
    ASSERT_TRUE(q.grant("w1", 0, a));
    ASSERT_TRUE(q.grant("w2", 0, b));
    EXPECT_EQ(a.leaseId, 1u);
    EXPECT_EQ(b.leaseId, 2u);
    EXPECT_EQ(q.activeLeases(), 2u);

    LeaseQueue::Grant c;
    EXPECT_FALSE(q.grant("w3", 0, c)) << "nothing pending";
    EXPECT_FALSE(q.complete());

    EXPECT_EQ(q.ack(a.leaseId), LeaseQueue::AckResult::Accepted);
    EXPECT_EQ(q.doneJobs(), 2u);
    EXPECT_FALSE(q.complete());
    EXPECT_EQ(q.ack(b.leaseId), LeaseQueue::AckResult::Accepted);
    EXPECT_EQ(q.doneJobs(), 3u);
    EXPECT_TRUE(q.complete());
    EXPECT_EQ(q.stats().leasesGranted, 2u);
    EXPECT_EQ(q.stats().reLeases, 0u);
}

TEST(LeaseQueue, DuplicateAndUnknownAcksAreRejected)
{
    LeaseQueue q({2}, 2, kTimeoutNs);
    LeaseQueue::Grant g;
    ASSERT_TRUE(q.grant("w", 0, g));
    EXPECT_EQ(q.ack(g.leaseId), LeaseQueue::AckResult::Accepted);
    EXPECT_EQ(q.ack(g.leaseId), LeaseQueue::AckResult::Duplicate);
    EXPECT_EQ(q.ack(99), LeaseQueue::AckResult::Unknown);
    EXPECT_EQ(q.ack(0), LeaseQueue::AckResult::Unknown);
    EXPECT_EQ(q.stats().duplicateAcks, 3u);
    EXPECT_TRUE(q.complete()) << "rejected acks must not un-complete";
}

TEST(LeaseQueue, ExpiryRequeuesAndTheStolenChunkIsReLeased)
{
    LeaseQueue q({2}, 2, kTimeoutNs);
    LeaseQueue::Grant first;
    ASSERT_TRUE(q.grant("slow", 0, first));

    // Not yet lapsed: deadline is grant time + timeout.
    EXPECT_TRUE(q.expire(kTimeoutNs - 1).empty());
    const auto expired = q.expire(kTimeoutNs);
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0].leaseId, first.leaseId);
    EXPECT_EQ(q.pendingChunks(), 1u);
    EXPECT_EQ(q.activeLeases(), 0u);
    EXPECT_EQ(q.stats().expired, 1u);

    // An ack from the presumed-dead worker before the re-grant: the
    // grant is void, the chunk stays queued for stealing.
    EXPECT_EQ(q.ack(first.leaseId), LeaseQueue::AckResult::Stale);
    EXPECT_EQ(q.pendingChunks(), 1u);

    LeaseQueue::Grant second;
    ASSERT_TRUE(q.grant("thief", 2 * kTimeoutNs, second));
    EXPECT_NE(second.leaseId, first.leaseId);
    EXPECT_EQ(second.chunk.begin, first.chunk.begin);
    EXPECT_EQ(q.stats().reLeases, 1u);

    // The resurfaced original holder acks after the steal: stale.
    EXPECT_EQ(q.ack(first.leaseId), LeaseQueue::AckResult::Stale);
    EXPECT_EQ(q.ack(second.leaseId), LeaseQueue::AckResult::Accepted);
    EXPECT_TRUE(q.complete());
}

TEST(LeaseQueue, HeartbeatExtendsTheDeadline)
{
    LeaseQueue q({1}, 1, kTimeoutNs);
    LeaseQueue::Grant g;
    ASSERT_TRUE(q.grant("w", 0, g));
    EXPECT_TRUE(q.heartbeat(g.leaseId, 500));
    EXPECT_TRUE(q.expire(kTimeoutNs).empty())
        << "heartbeat at 500 moved the deadline to 1500";
    EXPECT_EQ(q.expire(500 + kTimeoutNs).size(), 1u);

    // Dead, unknown, and superseded leases cannot heartbeat.
    EXPECT_FALSE(q.heartbeat(g.leaseId, 2000));
    EXPECT_FALSE(q.heartbeat(42, 2000));
}

TEST(LeaseQueue, AbandonRequeuesImmediately)
{
    LeaseQueue q({4}, 2, kTimeoutNs);
    LeaseQueue::Grant a, b;
    ASSERT_TRUE(q.grant("doomed", 0, a));
    ASSERT_TRUE(q.grant("doomed", 0, b));
    EXPECT_EQ(q.pendingChunks(), 0u);

    // Worker died on disconnect: both leases return without waiting out
    // the timeout; unknown ids are ignored.
    EXPECT_EQ(q.abandon({a.leaseId, b.leaseId, 77}), 2u);
    EXPECT_EQ(q.pendingChunks(), 2u);
    EXPECT_EQ(q.stats().abandoned, 2u);
    EXPECT_EQ(q.ack(a.leaseId), LeaseQueue::AckResult::Stale);

    LeaseQueue::Grant a2, b2;
    ASSERT_TRUE(q.grant("w2", 0, a2));
    ASSERT_TRUE(q.grant("w2", 0, b2));
    EXPECT_EQ(q.ack(a2.leaseId), LeaseQueue::AckResult::Accepted);
    EXPECT_EQ(q.ack(b2.leaseId), LeaseQueue::AckResult::Accepted);
    EXPECT_TRUE(q.complete());
    EXPECT_EQ(q.stats().reLeases, 2u);
}

TEST(FleetProtocol, HelloWelcomeRoundTrip)
{
    FleetMessage hello;
    hello.type = FleetMessage::Type::Hello;
    hello.protocol = fleetProtocolVersion;
    hello.worker = "w\"1\"";

    FleetMessage decoded;
    std::string error;
    ASSERT_TRUE(
        decodeFleetMessage(encodeFleetMessage(hello), decoded, error))
        << error;
    EXPECT_EQ(decoded.type, FleetMessage::Type::Hello);
    EXPECT_EQ(decoded.protocol, fleetProtocolVersion);
    EXPECT_EQ(decoded.worker, "w\"1\"");

    FleetMessage welcome;
    welcome.type = FleetMessage::Type::Welcome;
    welcome.protocol = 7;
    ASSERT_TRUE(decodeFleetMessage(encodeFleetMessage(welcome),
                                   decoded, error))
        << error;
    EXPECT_EQ(decoded.type, FleetMessage::Type::Welcome);
    EXPECT_EQ(decoded.protocol, 7);
}

TEST(FleetProtocol, LeaseRoundTripRestoresOptionsAndFloor)
{
    FleetMessage lease;
    lease.type = FleetMessage::Type::Lease;
    lease.leaseId = 42;
    lease.experiment = "fig5";
    lease.jobBegin = 8;
    lease.jobEnd = 12;
    lease.options.seed = 3;
    lease.options.rowCap = 16;
    lease.options.weightLaneBias = 0.25;
    lease.options.actRunLength = 1.5;
    lease.options.sim.sampleFraction = 0.02;
    lease.options.enforceDramBound = true;
    lease.gridOverride = "network=alexnet";

    FleetMessage decoded;
    std::string error;
    ASSERT_TRUE(
        decodeFleetMessage(encodeFleetMessage(lease), decoded, error))
        << error;
    EXPECT_EQ(decoded.type, FleetMessage::Type::Lease);
    EXPECT_EQ(decoded.leaseId, 42u);
    EXPECT_EQ(decoded.experiment, "fig5");
    EXPECT_EQ(decoded.jobBegin, 8u);
    EXPECT_EQ(decoded.jobEnd, 12u);
    EXPECT_EQ(decoded.options.seed, 3u);
    EXPECT_EQ(decoded.options.rowCap, 16);
    EXPECT_EQ(decoded.options.weightLaneBias, 0.25);
    EXPECT_EQ(decoded.options.actRunLength, 1.5);
    EXPECT_EQ(decoded.options.sim.sampleFraction, 0.02);
    EXPECT_TRUE(decoded.options.enforceDramBound);
    EXPECT_EQ(decoded.gridOverride, "network=alexnet");
    // Not on the wire; re-applied from the shared driver constant,
    // exactly like shard_merge's row reconstruction.
    EXPECT_EQ(decoded.options.sim.minSampledTiles,
              defaultMinSampledTiles);
}

TEST(FleetProtocol, RowsAndAcksRoundTrip)
{
    FleetMessage rows;
    rows.type = FleetMessage::Type::Rows;
    rows.leaseId = 9;
    rows.rows = {"{\"network\": \"alexnet\"}", "{\"b\": 2}"};

    FleetMessage decoded;
    std::string error;
    ASSERT_TRUE(
        decodeFleetMessage(encodeFleetMessage(rows), decoded, error))
        << error;
    EXPECT_EQ(decoded.type, FleetMessage::Type::Rows);
    EXPECT_EQ(decoded.leaseId, 9u);
    ASSERT_EQ(decoded.rows.size(), 2u);
    EXPECT_EQ(decoded.rows[0], "{\"network\": \"alexnet\"}")
        << "row lines must survive the wire verbatim — the "
           "coordinator concatenates them byte-for-byte";
    EXPECT_EQ(decoded.rows[1], "{\"b\": 2}");

    FleetMessage ack;
    ack.type = FleetMessage::Type::RowsAck;
    ack.leaseId = 9;
    ack.accepted = false;
    ack.reason = "lease expired";
    ASSERT_TRUE(
        decodeFleetMessage(encodeFleetMessage(ack), decoded, error))
        << error;
    EXPECT_EQ(decoded.type, FleetMessage::Type::RowsAck);
    EXPECT_FALSE(decoded.accepted);
    EXPECT_EQ(decoded.reason, "lease expired");
}

TEST(FleetProtocol, SimpleMessagesRoundTrip)
{
    for (const auto type :
         {FleetMessage::Type::LeaseRequest, FleetMessage::Type::Done}) {
        FleetMessage msg;
        msg.type = type;
        FleetMessage decoded;
        std::string error;
        ASSERT_TRUE(decodeFleetMessage(encodeFleetMessage(msg),
                                       decoded, error))
            << error;
        EXPECT_EQ(decoded.type, type);
    }

    FleetMessage wait;
    wait.type = FleetMessage::Type::Wait;
    wait.retryMs = 250;
    FleetMessage decoded;
    std::string error;
    ASSERT_TRUE(
        decodeFleetMessage(encodeFleetMessage(wait), decoded, error))
        << error;
    EXPECT_EQ(decoded.retryMs, 250);

    FleetMessage heartbeat;
    heartbeat.type = FleetMessage::Type::Heartbeat;
    heartbeat.leaseId = 6;
    ASSERT_TRUE(decodeFleetMessage(encodeFleetMessage(heartbeat),
                                   decoded, error))
        << error;
    EXPECT_EQ(decoded.leaseId, 6u);
}

TEST(FleetProtocol, MalformedMessagesAreRejectedNotFatal)
{
    // A wire peer may be another build: every malformed case must
    // come back as a decode failure with a diagnostic, never fatal().
    FleetMessage out;
    std::string error;
    EXPECT_FALSE(decodeFleetMessage("not json", out, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(decodeFleetMessage("[1, 2]", out, error));
    EXPECT_FALSE(decodeFleetMessage("{}", out, error));
    EXPECT_FALSE(decodeFleetMessage("{\"type\": \"warp\"}", out, error));
    EXPECT_NE(error.find("warp"), std::string::npos);
    // Missing and mistyped fields.
    EXPECT_FALSE(decodeFleetMessage("{\"type\": \"hello\"}", out, error));
    EXPECT_FALSE(decodeFleetMessage(
        "{\"type\": \"hello\", \"protocol\": \"x\", \"worker\": \"w\"}",
        out, error));
    EXPECT_FALSE(decodeFleetMessage(
        "{\"type\": \"heartbeat\", \"lease_id\": \"nine\"}", out,
        error));
    EXPECT_FALSE(decodeFleetMessage(
        "{\"type\": \"rows\", \"lease_id\": 1, \"rows\": [3]}", out,
        error));
    EXPECT_FALSE(decodeFleetMessage(
        "{\"type\": \"lease\", \"lease_id\": 1}", out, error));
}

TEST(Socket, LoopbackLineFraming)
{
    TcpListener listener;
    ASSERT_TRUE(listener.listen(0)) << listener.lastError();
    ASSERT_NE(listener.port(), 0) << "ephemeral port must resolve";

    TcpStream client;
    ASSERT_TRUE(client.connect("127.0.0.1", listener.port()))
        << client.lastError();
    TcpStream server;
    ASSERT_TRUE(listener.accept(server, 1000))
        << listener.lastError();

    ASSERT_TRUE(client.sendLine("hello"));
    ASSERT_TRUE(client.sendLine("{\"k\": \"v\"}"));
    std::string line;
    ASSERT_TRUE(server.recvLine(line, 1000)) << server.lastError();
    EXPECT_EQ(line, "hello");
    ASSERT_TRUE(server.recvLine(line, 1000)) << server.lastError();
    EXPECT_EQ(line, "{\"k\": \"v\"}");

    ASSERT_TRUE(server.sendLine("reply"));
    ASSERT_TRUE(client.recvLine(line, 1000)) << client.lastError();
    EXPECT_EQ(line, "reply");

    // Orderly close surfaces as a recv failure, not a crash.
    client.close();
    EXPECT_FALSE(server.recvLine(line, 1000));
}

TEST(Socket, ParseHostPort)
{
    std::string host;
    std::uint16_t port = 0;
    EXPECT_TRUE(parseHostPort("127.0.0.1:8080", host, port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
    EXPECT_TRUE(parseHostPort("box:1", host, port));
    EXPECT_EQ(host, "box");
    EXPECT_EQ(port, 1);
    EXPECT_FALSE(parseHostPort("nohost", host, port));
    EXPECT_FALSE(parseHostPort(":80", host, port));
    EXPECT_FALSE(parseHostPort("h:", host, port));
    EXPECT_FALSE(parseHostPort("h:0", host, port));
    EXPECT_FALSE(parseHostPort("h:70000", host, port));
    EXPECT_FALSE(parseHostPort("h:12x", host, port));
}

} // namespace
} // namespace griffin
