/**
 * @file
 * Tests for the GEMM-level cycle simulator: speedup bounds, sampling
 * accuracy, bandwidth effects, and category-driven morphing.
 */

#include <gtest/gtest.h>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/schedule_cache.hh"
#include "sim/gemm_sim.hh"
#include "tensor/shuffle.hh"
#include "tensor/sparsity.hh"
#include "tensor/tile.hh"

namespace griffin {
namespace {

struct Tensors
{
    MatrixI8 a;
    MatrixI8 b;
};

Tensors
makeTensors(std::int64_t m, std::int64_t k, std::int64_t n,
            double a_sp, double b_sp, std::uint64_t seed)
{
    Rng rng(seed);
    return {randomSparse(static_cast<std::size_t>(m),
                         static_cast<std::size_t>(k), a_sp, rng),
            randomSparse(static_cast<std::size_t>(k),
                         static_cast<std::size_t>(n), b_sp, rng)};
}

/**
 * Datapath-isolation helper: the unit-test GEMMs are much thinner than
 * the paper's layers, so at the real 50 GB/s they would be DRAM-bound
 * and every architecture would measure alike.  Tests that probe the
 * datapath raise the DRAM ceiling; DramBytesAccountCompressedB and
 * ThrottledBandwidthReducesSpeedup cover the memory side explicitly.
 */
ArchConfig
unboundDram(ArchConfig cfg)
{
    cfg.mem.dramGBs = 1e6;
    return cfg;
}

TEST(GemmSim, DenseBaselineMatchesClosedForm)
{
    auto t = makeTensors(64, 256, 64, 0.0, 0.0, 11);
    auto r = simulateGemm(t.a, t.b, denseBaseline(), DnnCategory::Dense);
    EXPECT_EQ(r.computeCycles, r.denseCycles);
    EXPECT_EQ(r.denseCycles, 16 * 4 * 16);
    EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
    EXPECT_EQ(r.denseOps, 64 * 256 * 64);
    EXPECT_EQ(r.effectualOps, r.denseOps);
}

TEST(GemmSim, SparseBSpeedupWithinIdealBound)
{
    auto t = makeTensors(32, 512, 32, 0.0, 0.8, 12);
    auto r = simulateGemm(t.a, t.b, unboundDram(sparseBStar()),
                          DnnCategory::B);
    // Ideal bound is the window depth 1 + db1 = 5.
    EXPECT_GT(r.speedup(), 1.3);
    EXPECT_LE(r.speedup(), 5.0);
}

TEST(GemmSim, SparseBOnDenseDataIsNeutral)
{
    auto t = makeTensors(16, 256, 32, 0.0, 0.0, 13);
    auto r = simulateGemm(t.a, t.b, unboundDram(sparseBStar()),
                          DnnCategory::Dense);
    EXPECT_EQ(r.computeCycles, r.denseCycles);
}

TEST(GemmSim, SparseASpeedupTracksActivationSparsity)
{
    auto t = makeTensors(64, 512, 32, 0.5, 0.0, 14);
    auto r = simulateGemm(t.a, t.b, unboundDram(sparseAStar()),
                          DnnCategory::A);
    EXPECT_GT(r.speedup(), 1.2);
    EXPECT_LE(r.speedup(), 3.0); // window depth 1 + da1 = 3
}

TEST(GemmSim, DualSpeedupCompoundsBothSparsities)
{
    auto t = makeTensors(32, 512, 32, 0.5, 0.8, 15);
    auto dual = simulateGemm(t.a, t.b, unboundDram(sparseABStar()),
                             DnnCategory::AB);
    auto b_only = simulateGemm(t.a, t.b, unboundDram(sparseBStar()),
                               DnnCategory::B);
    EXPECT_GT(dual.speedup(), b_only.speedup());
    EXPECT_LE(dual.speedup(), 9.0); // L = (1+2)(1+2)
}

TEST(GemmSim, MoreSparsityNeverSlowsTheSameArch)
{
    const auto arch = unboundDram(sparseBStar());
    double prev = 0.0;
    for (double sp : {0.0, 0.4, 0.7, 0.9}) {
        auto t = makeTensors(16, 512, 32, 0.0, sp, 16);
        auto r = simulateGemm(t.a, t.b, arch, DnnCategory::B);
        EXPECT_GE(r.speedup() + 0.05, prev) << "sparsity " << sp;
        prev = r.speedup();
    }
}

TEST(GemmSim, GriffinMorphsToWiderWindowOnSingleSparse)
{
    // On a weight-only workload Griffin (conf.B window 9) must beat
    // the rigid dual design (effective window 3 on the B side).
    auto t = makeTensors(16, 768, 32, 0.0, 0.9, 17);
    auto rigid = simulateGemm(t.a, t.b, unboundDram(sparseABStar()),
                              DnnCategory::B);
    auto hybrid = simulateGemm(t.a, t.b, unboundDram(griffinArch()),
                               DnnCategory::B);
    EXPECT_GT(hybrid.speedup(), rigid.speedup());
}

TEST(GemmSim, SamplingApproximatesExact)
{
    auto t = makeTensors(128, 256, 128, 0.5, 0.8, 18);
    SimOptions exact;
    auto full = simulateGemm(t.a, t.b, unboundDram(sparseABStar()),
                             DnnCategory::AB, exact);
    SimOptions sampled;
    sampled.sampleFraction = 0.1;
    auto approx = simulateGemm(t.a, t.b, unboundDram(sparseABStar()),
                               DnnCategory::AB, sampled);
    EXPECT_LT(approx.simulatedTiles, full.simulatedTiles);
    const double rel =
        std::abs(static_cast<double>(approx.computeCycles) -
                 static_cast<double>(full.computeCycles)) /
        static_cast<double>(full.computeCycles);
    EXPECT_LT(rel, 0.10);
}

TEST(GemmSim, ThrottledBandwidthReducesSpeedup)
{
    auto t = makeTensors(16, 1024, 32, 0.0, 0.9, 19);
    auto arch = unboundDram(sparseBStar());
    auto free_bw = simulateGemm(t.a, t.b, arch, DnnCategory::B);
    arch.bwScale = 1.5;
    auto tight = simulateGemm(t.a, t.b, arch, DnnCategory::B);
    EXPECT_LT(tight.speedup(), free_bw.speedup());
    EXPECT_LE(tight.speedup(), 1.5 + 0.01);
}

TEST(GemmSim, DramBytesAccountCompressedB)
{
    auto t = makeTensors(8, 256, 16, 0.0, 0.9, 20);
    auto dense_run =
        simulateGemm(t.a, t.b, denseBaseline(), DnnCategory::Dense);
    auto sparse_run =
        simulateGemm(t.a, t.b, sparseBStar(), DnnCategory::B);
    // Compressed B (10% nnz + metadata) must beat dense K*N traffic.
    EXPECT_LT(sparse_run.dramBytes, dense_run.dramBytes);
    EXPECT_GE(sparse_run.dramBytes,
              static_cast<std::int64_t>(t.a.rows() * t.a.cols()));
}

TEST(GemmSim, DrainCyclesAddPerTileOverhead)
{
    auto t = makeTensors(64, 64, 64, 0.0, 0.0, 21);
    SimOptions opt;
    opt.drainCyclesPerTile = 4;
    auto r = simulateGemm(t.a, t.b, denseBaseline(), DnnCategory::Dense,
                          opt);
    EXPECT_EQ(r.totalCycles, r.denseCycles + 4 * r.totalTiles);
}

TEST(GemmSim, EffectualOpsCountsPairs)
{
    MatrixI8 a(2, 4), b(4, 2);
    a.at(0, 0) = 1;
    a.at(1, 2) = 3;
    b.at(0, 0) = 5; // pairs with a(0,0) for n=0
    b.at(2, 1) = 7; // pairs with a(1,2) for n=1
    b.at(3, 0) = 2; // no nonzero a in column k=3
    auto r = simulateGemm(a, b, denseBaseline(), DnnCategory::Dense);
    EXPECT_EQ(r.effectualOps, 2);
}

TEST(GemmSimDeathTest, MacGridIsRejected)
{
    auto t = makeTensors(8, 32, 16, 0.5, 0.5, 22);
    EXPECT_EXIT(simulateGemm(t.a, t.b, sparTenAB(), DnnCategory::AB),
                testing::ExitedWithCode(exitUsageError), "SparTen simulator");
}

TEST(GemmSimDeathTest, BadSampleFractionIsFatal)
{
    auto t = makeTensors(8, 32, 16, 0.0, 0.0, 23);
    SimOptions opt;
    opt.sampleFraction = 0.0;
    EXPECT_EXIT(simulateGemm(t.a, t.b, denseBaseline(),
                             DnnCategory::Dense, opt),
                testing::ExitedWithCode(exitUsageError), "sample fraction");
}

TEST(GemmSim, DegenerateShapes)
{
    MatrixI8 a(0, 16), b(16, 8);
    auto r = simulateGemm(a, b, denseBaseline(), DnnCategory::Dense);
    EXPECT_EQ(r.totalCycles, 0);
    EXPECT_EQ(r.totalTiles, 0);
}

// ---- staged pipeline ------------------------------------------------

void
expectResultsEq(const GemmSimResult &x, const GemmSimResult &y)
{
    EXPECT_EQ(x.denseCycles, y.denseCycles);
    EXPECT_EQ(x.computeCycles, y.computeCycles);
    EXPECT_EQ(x.dramCycles, y.dramCycles);
    EXPECT_EQ(x.totalCycles, y.totalCycles);
    EXPECT_EQ(x.dramBytes, y.dramBytes);
    EXPECT_EQ(x.denseOps, y.denseOps);
    EXPECT_EQ(x.effectualOps, y.effectualOps);
    EXPECT_EQ(x.simulatedTiles, y.simulatedTiles);
    EXPECT_EQ(x.totalTiles, y.totalTiles);
    EXPECT_EQ(x.sched.cycles, y.sched.cycles);
    EXPECT_EQ(x.sched.ops, y.sched.ops);
    EXPECT_EQ(x.sched.stolenOps, y.sched.stolenOps);
}

TEST(GemmSim, StagedOperandsMatchMonolithicEntryPoint)
{
    auto t = makeTensors(32, 128, 48, 0.5, 0.8, 31);
    for (const auto &arch :
         {unboundDram(sparseBStar()), unboundDram(sparseAStar()),
          unboundDram(griffinArch())}) {
        SimOptions opt;
        opt.sampleFraction = 1.0;
        const auto mono =
            simulateGemm(t.a, t.b, arch, DnnCategory::AB, opt);
        const auto staged = simulateGemm(makeGemmOperands(t.a, t.b),
                                         arch, DnnCategory::AB, opt);
        expectResultsEq(staged, mono);
    }
}

TEST(GemmSim, AScheduleCacheDoesNotChangeResults)
{
    auto t = makeTensors(64, 128, 32, 0.6, 0.0, 37);
    const auto arch = unboundDram(sparseAStar());
    SimOptions opt;
    opt.sampleFraction = 1.0;
    const auto plain = simulateGemm(t.a, t.b, arch, DnnCategory::A, opt);

    AScheduleCache cache;
    opt.aScheduleCache = &cache;
    const auto cold = simulateGemm(t.a, t.b, arch, DnnCategory::A, opt);
    const auto warm = simulateGemm(t.a, t.b, arch, DnnCategory::A, opt);
    expectResultsEq(cold, plain);
    expectResultsEq(warm, plain);
    const auto stats = cache.stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.misses, stats.entries);
}

TEST(GemmSim, AScheduleKeySeparatesBandwidthAndContent)
{
    auto t = makeTensors(4, 64, 16, 0.5, 0.0, 41);
    const auto arch = sparseAStar();
    const auto routing = arch.effectiveRouting(DnnCategory::A);
    Shuffler shuffler(routing.shuffle, arch.tile.k0);
    TileViewA va(t.a, arch.tile, 0);
    const auto k1 =
        AScheduleCache::contentKey(va, routing.a, shuffler, 1.0);
    EXPECT_EQ(AScheduleCache::contentKey(va, routing.a, shuffler, 1.0),
              k1);
    // The bandwidth cap changes cycle counts, so it must change keys.
    EXPECT_NE(AScheduleCache::contentKey(va, routing.a, shuffler, 2.0),
              k1);
    auto t2 = makeTensors(4, 64, 16, 0.5, 0.0, 43);
    TileViewA va2(t2.a, arch.tile, 0);
    EXPECT_NE(AScheduleCache::contentKey(va2, routing.a, shuffler, 1.0),
              k1);
}

} // namespace
} // namespace griffin
