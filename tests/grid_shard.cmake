# CTest script: the acceptance bar for fleet sharding.  One experiment
# (fig5, narrowed by a --grid override to three B-side-compatible
# design points on one network) is run
#   (a) unsharded on 1 and 8 threads   -> byte-identical .jsonl docs
#   (b) as three --grid-shard slices sharing one --cache-file
#       -> concatenating the slices in shard order is byte-identical
#          to the unsharded document, and the warm shards report
#          load_hits > 0 (the shared cache file actually served them).
#
# The three arch values share their B-side routing (db = (4,0,1),
# shuffle on) and run on identical tensors, so every shard after the
# first finds its preprocessed B schedules in the cache file.
#
# Invoked as:
#   cmake -DGRIFFIN_BENCH=<path> -DWORK_DIR=<dir> -P grid_shard.cmake

if(NOT GRIFFIN_BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DGRIFFIN_BENCH=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args
    run fig5
    --grid "arch=Sparse.B*,AB(2,0,0,4,0,1,on),AB(1,0,0,4,0,1,on),network=alexnet"
    --sample 0.02 --rowcap 8)

# (a) unsharded, thread-count invariance of the .jsonl document.
foreach(threads 1 8)
    execute_process(
        COMMAND "${GRIFFIN_BENCH}" ${common_args} --threads ${threads}
                --out "${WORK_DIR}/full_t${threads}.jsonl"
        OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "unsharded griffin_bench run failed on ${threads} "
                "threads (${rc}):\n${err}")
    endif()
endforeach()

file(READ "${WORK_DIR}/full_t1.jsonl" full_doc)
file(READ "${WORK_DIR}/full_t8.jsonl" doc8)
if(NOT full_doc STREQUAL doc8)
    message(FATAL_ERROR
            "unsharded .jsonl differs between --threads 1 and 8")
endif()
string(LENGTH "${full_doc}" full_len)
if(full_len EQUAL 0)
    message(FATAL_ERROR "unsharded .jsonl document is empty")
endif()

# (b) three shards sharing a cache file, run in shard order.
set(warm_hits 0)
foreach(shard 0 1 2)
    execute_process(
        COMMAND "${GRIFFIN_BENCH}" ${common_args} --threads 2
                --grid-shard ${shard}/3
                --cache-file "${WORK_DIR}/fleet.grfc"
                --out "${WORK_DIR}/shard${shard}.jsonl"
        OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "shard ${shard}/3 failed (${rc}):\n${err}")
    endif()
    if(shard EQUAL 0)
        if(out MATCHES "\"load_hits\": [1-9]")
            message(FATAL_ERROR
                    "cold shard 0 reported load hits:\n${out}")
        endif()
    elseif(out MATCHES "\"load_hits\": [1-9]")
        math(EXPR warm_hits "${warm_hits} + 1")
    endif()
endforeach()
if(warm_hits EQUAL 0)
    message(FATAL_ERROR
            "no warm shard reported load_hits > 0 — the shared cache "
            "file served nothing")
endif()

file(READ "${WORK_DIR}/shard0.jsonl" s0)
file(READ "${WORK_DIR}/shard1.jsonl" s1)
file(READ "${WORK_DIR}/shard2.jsonl" s2)
if(NOT "${s0}${s1}${s2}" STREQUAL full_doc)
    message(FATAL_ERROR
            "concatenated shard .jsonl differs from the unsharded run")
endif()

message(STATUS
        "grid shard OK: thread-invariant, concat-identical, "
        "${warm_hits}/2 warm shards served from the cache file")
