/**
 * @file
 * Tests for the logging / error-reporting substrate.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace griffin {
namespace {

TEST(Logging, ConcatStreamsHeterogeneousArgs)
{
    EXPECT_EQ(detail::concat("lane ", 3, " of ", 16), "lane 3 of 16");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat(1.5), "1.5");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 42, " broken"), "invariant 42 broken");
}

TEST(LoggingDeathTest, FatalExitsWithUsageErrorStatus)
{
    // fatal() is the user-error path; its status is distinct from
    // fatalRun()'s so fleet scripts can branch on $? alone.
    EXPECT_EXIT(fatal("bad config"),
                testing::ExitedWithCode(exitUsageError), "bad config");
}

TEST(LoggingDeathTest, FatalRunExitsWithRunFailureStatus)
{
    EXPECT_EXIT(fatalRun("worker died"),
                testing::ExitedWithCode(exitRunFailure), "worker died");
}

TEST(Logging, ExitStatusesAreDistinctAndDocumented)
{
    EXPECT_EQ(exitSuccess, 0);
    EXPECT_EQ(exitRunFailure, 1);
    EXPECT_EQ(exitUsageError, 2);
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(GRIFFIN_ASSERT(1 == 2, "math is off"),
                 "assertion '1 == 2' failed: math is off");
}

TEST(Logging, AssertPassesOnTrue)
{
    GRIFFIN_ASSERT(2 + 2 == 4);
    SUCCEED();
}

TEST(LoggingDeathTest, LinesCarryMonotonicTimestamp)
{
    // "severity: [+12.345s] msg" — monotonic seconds since process
    // start, fixed three-decimal format, one line per record.
    EXPECT_DEATH(panic("stamped"),
                 "panic: \\[\\+[0-9]+\\.[0-9][0-9][0-9]s\\] stamped");
    EXPECT_EXIT(fatal("stamped too"), testing::ExitedWithCode(exitUsageError),
                "fatal: \\[\\+[0-9]+\\.[0-9][0-9][0-9]s\\] stamped too");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning ", 1);
    inform("status ", 2);
    SUCCEED();
}

} // namespace
} // namespace griffin
