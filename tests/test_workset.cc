/**
 * @file
 * Tests for the stage-1 pipeline artifact (tensor/workset.hh) and its
 * content-addressed cache (runtime/workset_cache.hh): generation
 * determinism, cold-vs-warm bit-identity through Accelerator::runLayer,
 * eviction correctness under a tiny byte budget, serialization
 * round-trips, and the stats surfaced through writeCacheStatsJsonLine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/presets.hh"
#include "griffin/accelerator.hh"
#include "runtime/cache_store.hh"
#include "runtime/result_sink.hh"
#include "runtime/workset_cache.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

WorksetParams
tinyParams(std::uint64_t seed = 7)
{
    WorksetParams p;
    p.m = 16;
    p.k = 64;
    p.n = 32;
    p.weightSparsity = 0.8;
    p.actSparsity = 0.5;
    p.weightLaneBias = 0.5;
    p.actRunLength = 2.0;
    p.seed = seed;
    return p;
}

void
expectWorksetEq(const LayerWorkset &x, const LayerWorkset &y)
{
    EXPECT_EQ(x.a, y.a);
    EXPECT_EQ(x.b, y.b);
    EXPECT_EQ(x.simSeed, y.simSeed);
    EXPECT_EQ(x.effectualOps, y.effectualOps);
    EXPECT_EQ(x.nnzB, y.nnzB);
}

TEST(Workset, GenerationIsDeterministic)
{
    const auto p = tinyParams();
    const auto w1 = generateLayerWorkset(p);
    const auto w2 = generateLayerWorkset(p);
    expectWorksetEq(w1, w2);
    EXPECT_EQ(w1.a.rows(), 16u);
    EXPECT_EQ(w1.a.cols(), 64u);
    EXPECT_EQ(w1.b.rows(), 64u);
    EXPECT_EQ(w1.b.cols(), 32u);
    EXPECT_EQ(w1.effectualOps, countEffectualOps(w1.a, w1.b));
    EXPECT_EQ(w1.nnzB, static_cast<std::int64_t>(w1.b.nnz()));
}

TEST(Workset, SeedAndShapeChangeTheKeyAndTheData)
{
    const auto p = tinyParams(7);
    auto p2 = tinyParams(8);
    EXPECT_NE(WorksetCache::contentKey(p), WorksetCache::contentKey(p2));
    auto p3 = tinyParams(7);
    p3.n = 48;
    EXPECT_NE(WorksetCache::contentKey(p), WorksetCache::contentKey(p3));
    auto p4 = tinyParams(7);
    p4.weightLaneBias = 0.25;
    EXPECT_NE(WorksetCache::contentKey(p), WorksetCache::contentKey(p4));
    EXPECT_EQ(WorksetCache::contentKey(p),
              WorksetCache::contentKey(tinyParams(7)));

    const auto w1 = generateLayerWorkset(p);
    const auto w2 = generateLayerWorkset(tinyParams(8));
    EXPECT_NE(w1.a, w2.a);
}

TEST(Workset, CacheReturnsGeneratedContent)
{
    WorksetCache cache;
    const auto p = tinyParams();
    const auto direct = generateLayerWorkset(p);
    const auto cold = cache.obtain(p);
    expectWorksetEq(*cold, direct);
    const auto warm = cache.obtain(p);
    EXPECT_EQ(cold.get(), warm.get()); // shared, not regenerated
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(Workset, ColdAndWarmRunLayerBitIdentical)
{
    const auto net = alexNet();
    const Accelerator acc(griffinArch());
    RunOptions opt;
    opt.rowCap = 8;
    opt.sim.sampleFraction = 0.25;
    opt.sim.minSampledTiles = 2;

    // Reference: no cache at all (the historical inline generation).
    const auto plain = acc.runLayer(net, 0, DnnCategory::AB, opt);

    WorksetCache cache;
    opt.worksetCache = &cache;
    const auto cold = acc.runLayer(net, 0, DnnCategory::AB, opt);
    const auto warm = acc.runLayer(net, 0, DnnCategory::AB, opt);
    EXPECT_GE(cache.stats().hits, 1u);

    for (const auto *lr : {&cold, &warm}) {
        EXPECT_EQ(lr->name, plain.name);
        EXPECT_EQ(lr->denseCycles, plain.denseCycles);
        EXPECT_EQ(lr->computeCycles, plain.computeCycles);
        EXPECT_EQ(lr->dramCycles, plain.dramCycles);
        EXPECT_EQ(lr->totalCycles, plain.totalCycles);
        EXPECT_EQ(lr->macs, plain.macs);
        EXPECT_DOUBLE_EQ(lr->speedup, plain.speedup);
    }
}

TEST(Workset, EvictionUnderTinyBudgetStaysCorrect)
{
    WorksetCache cache(1); // one shard: the budget applies exactly
    const auto p1 = tinyParams(1);
    const auto p2 = tinyParams(2);
    const auto w1 = cache.obtain(p1);
    // Budget below two resident worksets: inserting the second must
    // evict the first (FIFO), never corrupt either.
    cache.setByteBudget(w1->approxBytes() + 16);
    const auto w2 = cache.obtain(p2);
    const auto stats = cache.stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_LE(stats.entries, 1u);
    // The evicted workset's shared_ptr stays valid...
    expectWorksetEq(*w1, generateLayerWorkset(p1));
    // ...and re-obtaining regenerates bit-identical content.
    const auto w1_again = cache.obtain(p1);
    expectWorksetEq(*w1_again, *w1);
    expectWorksetEq(*w2, generateLayerWorkset(p2));
}

TEST(Workset, SerializeRoundTrips)
{
    const auto w = generateLayerWorkset(tinyParams());
    std::stringstream ss;
    w.serialize(ss);
    LayerWorkset back;
    ASSERT_TRUE(LayerWorkset::deserialize(ss, back));
    expectWorksetEq(back, w);

    // Truncated payloads are rejected, not trusted.
    const auto bytes = ss.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    LayerWorkset bad;
    EXPECT_FALSE(LayerWorkset::deserialize(truncated, bad));
}

TEST(Workset, CacheFileRoundTripCountsLoadHits)
{
    const std::string path =
        ::testing::TempDir() + "workset_roundtrip.grfw";
    const auto p = tinyParams();
    {
        WorksetCache cache;
        cache.obtain(p);
        EXPECT_EQ(saveWorksetCacheFile(path, cache), 1u);
    }
    WorksetCache warm;
    EXPECT_EQ(loadWorksetCacheFile(path, warm), 1u);
    const auto w = warm.obtain(p);
    expectWorksetEq(*w, generateLayerWorkset(p));
    const auto stats = warm.stats();
    EXPECT_EQ(stats.loadedEntries, 1u);
    EXPECT_EQ(stats.loadHits, 1u);
    EXPECT_EQ(stats.misses, 0u);
}

TEST(Workset, StatsSurfaceThroughJsonLine)
{
    WorksetCache cache(1);
    const auto w1 = cache.obtain(tinyParams(1));
    cache.setByteBudget(w1->approxBytes() + 16);
    cache.obtain(tinyParams(2)); // evicts 1
    cache.obtain(tinyParams(2)); // hit

    std::ostringstream os;
    writeCacheStatsJsonLine(os, cache.stats(), "workset_cache_stats");
    const auto line = os.str();
    EXPECT_NE(line.find("{\"workset_cache_stats\": {"),
              std::string::npos);
    EXPECT_NE(line.find("\"evictions\": 1"), std::string::npos);
    EXPECT_NE(line.find("\"load_hits\": 0"), std::string::npos);
    EXPECT_NE(line.find("\"hits\": 1"), std::string::npos);

    // The schedule cache keeps its historical label by default.
    std::ostringstream os2;
    writeCacheStatsJsonLine(os2, CacheStats{});
    EXPECT_EQ(os2.str().rfind("{\"cache_stats\": {", 0), 0u);
}

} // namespace
} // namespace griffin
