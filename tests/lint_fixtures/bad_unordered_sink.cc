// Known-bad corpus for griffin-lint's unordered-sink-iteration rule.
// Every line carrying a FIRE marker must produce exactly that finding;
// nothing else in this file may fire.  Fixtures are linted, never
// compiled.
#include <algorithm>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace fixture {

struct Sink
{
    void putU64(unsigned long v);
    void addRow(const std::string &row);
};

void
streamCounts(std::ostream &os,
             const std::unordered_map<std::string, int> &counts)
{
    for (const auto &kv : counts) { // FIRE(unordered-sink-iteration)
        os << kv.first << "=" << kv.second << "\n";
    }
}

void
emitKeys(Sink &sink, const std::unordered_set<unsigned long> &keys)
{
    for (unsigned long k : keys) // FIRE(unordered-sink-iteration)
        sink.putU64(k);
}

using StageTable = std::unordered_map<std::string, double>;

void
renderStages(Sink &sink, const StageTable &stages)
{
    for (const auto &kv : stages) // FIRE(unordered-sink-iteration)
        sink.addRow(kv.first);
}

void
sortedFirstIsFine(std::ostream &os,
                  const std::unordered_map<std::string, int> &counts)
{
    std::vector<std::pair<std::string, int>> rows(counts.begin(),
                                                  counts.end());
    std::sort(rows.begin(), rows.end());
    for (const auto &row : rows)
        os << row.first << "=" << row.second << "\n";
}

int
accumulationIsFine(const std::unordered_map<std::string, int> &counts)
{
    int total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}

} // namespace fixture
