// Known-good corpus: idiomatic Griffin code that must produce zero
// findings — deterministic clocks, mixed (not hashed) seeds, ordered
// iteration in front of every sink, content-keyed maps, initialized
// records.  Fixtures are linted, never compiled.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fixture {

std::uint64_t
monotonicNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull + salt;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 31);
}

struct StageRow
{
    std::string stage;
    std::uint64_t count = 0;
    double totalMs = 0.0;

    void serialize(std::ostream &os) const;
};

void
renderBreakdown(std::ostream &os,
                const std::unordered_map<std::string, double> &totals)
{
    std::vector<std::pair<std::string, double>> rows(totals.begin(),
                                                     totals.end());
    std::sort(rows.begin(), rows.end());
    for (const auto &row : rows)
        os << row.first << "=" << row.second << "\n";
}

std::map<std::string, int> // ordered: iteration is name-sorted
countByName(const std::vector<std::string> &names)
{
    std::map<std::string, int> counts;
    for (const auto &name : names)
        ++counts[name];
    return counts;
}

} // namespace fixture
