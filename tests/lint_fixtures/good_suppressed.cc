// A justified, *used* suppression: the wall-clock read is allowed
// because the value lands in run metadata, never in result bytes —
// and the lint report stays clean (no finding, no unused-suppression).
#include <ctime>
#include <string>

namespace fixture {

std::string
launchStamp()
{
    // griffin-lint: allow(wall-clock) run metadata records the launch
    // date for humans; result rows never read it
    std::time_t now = time(nullptr);
    char buf[32];
    // griffin-lint: allow(wall-clock) same metadata-only path as above
    strftime(buf, sizeof buf, "%Y-%m-%d", localtime(&now));
    return buf;
}

} // namespace fixture
