/**
 * Known-bad fixture: raw SIMD intrinsics outside src/simd/.  Each
 * offending line carries a fire marker; test_lint.cc asserts the
 * linter reports exactly these (line, rule) pairs.  The same text
 * linted under a src/simd/ path must be clean — the rule is
 * path-aware, and that case is pinned by the test too.
 */

#include <immintrin.h> // FIRE(intrinsics-outside-simd)
#include <arm_neon.h>  // FIRE(intrinsics-outside-simd)
#include <emmintrin.h> // FIRE(intrinsics-outside-simd)

#include <cstdint>

namespace demo {

// A dispatched-kernel consumer is fine: names like nonzeroMasks or
// kernels() carry no intrinsic tokens and must not fire.
void callThroughTable(const std::int8_t *src, std::uint64_t *out);

inline std::uint32_t
movemaskNonzero(const std::int8_t *p)
{
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p)); // FIRE(intrinsics-outside-simd)
    const __m256i eq = _mm256_cmpeq_epi8(v, _mm256_setzero_si256()); // FIRE(intrinsics-outside-simd)
    return ~static_cast<std::uint32_t>(_mm256_movemask_epi8(eq)); // FIRE(intrinsics-outside-simd)
}

inline std::uint64_t
wideLanes(const std::int64_t *heads)
{
    return _mm512_reduce_add_epi64( // FIRE(intrinsics-outside-simd)
        _mm512_loadu_si512(heads)); // FIRE(intrinsics-outside-simd)
}

inline int
builtinGateway(const float *p)
{
    return __builtin_ia32_movmskps( // FIRE(intrinsics-outside-simd)
        __builtin_ia32_loadups(p)); // FIRE(intrinsics-outside-simd)
}

// Mentions inside strings and comments never fire: "_mm256_add_epi8"
// stays blanked by the source model.
inline const char *
docString()
{
    return "_mm256_add_epi8 and immintrin.h belong in src/simd/";
}

} // namespace demo
