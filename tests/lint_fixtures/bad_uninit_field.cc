// Known-bad corpus for griffin-lint's uninit-serialized-field rule.
// Every line carrying a FIRE marker must produce exactly that finding;
// nothing else in this file may fire.  Fixtures are linted, never
// compiled.
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fixture {

struct RowRecord
{
    std::uint64_t id = 0;
    std::uint32_t flags; // FIRE(uninit-serialized-field)
    double score; // FIRE(uninit-serialized-field)
    bool pinned{false};
    std::string name;
    std::vector<int> cols;

    void serialize(std::ostream &os) const;
};

// Reaches the GRFW encoder through a free function, so it carries the
// marker instead of a member:
// griffin-lint: serialized
struct MarkedRecord
{
    int count; // FIRE(uninit-serialized-field)
    long window[4]; // FIRE(uninit-serialized-field)
};

struct ScratchState // never encoded: raw fields are the caller's job
{
    int tmp;
    double acc;
};

} // namespace fixture
