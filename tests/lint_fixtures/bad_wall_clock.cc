// Known-bad corpus for griffin-lint's wall-clock rule.  Every line
// carrying a FIRE marker must produce exactly that finding; nothing else
// in this file may fire.  Fixtures are linted, never compiled.
#include <chrono>
#include <ctime>
#include <string>
#include <sys/time.h>

namespace fixture {

long
wallNanoseconds()
{
    const auto t = std::chrono::system_clock::now(); // FIRE(wall-clock)
    return t.time_since_epoch().count();
}

long
unixSeconds()
{
    return static_cast<long>(time(nullptr)); // FIRE(wall-clock)
}

long
microseconds()
{
    struct timeval tv;
    gettimeofday(&tv, nullptr); // FIRE(wall-clock)
    return tv.tv_usec;
}

std::string
stampedName(std::time_t stamp)
{
    char buf[32];
    std::tm tm = *localtime(&stamp); // FIRE(wall-clock)
    strftime(buf, sizeof buf, "%Y%m%d", &tm); // FIRE(wall-clock)
    return buf;
}

long
cpuTicks()
{
    return static_cast<long>(clock()); // FIRE(wall-clock)
}

long
fineToUse()
{
    // steady_clock is monotonic: telemetry-only, result-invisible.
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

long
notACall(long time_budget_ns, long uptime)
{
    return time_budget_ns + uptime; // identifiers containing "time"
}

} // namespace fixture
