// Suppression-machinery corpus: malformed and stale allow() comments
// are themselves findings, so the allowlist cannot rot.
#include <ctime>

namespace fixture {

long
missingJustification()
{
    // griffin-lint: allow(wall-clock)
    return static_cast<long>(time(nullptr));
}

long
unknownRule()
{
    // griffin-lint: allow(no-such-rule) wall time is intended here
    return static_cast<long>(time(nullptr));
}

long
emptyRuleList()
{
    // griffin-lint: allow() forgot to name the rule
    return static_cast<long>(time(nullptr));
}

int
staleSuppression()
{
    int x = 3; // griffin-lint: allow(banned-random) nothing random on this line
    return x;
}

} // namespace fixture
