// Known-bad corpus for griffin-lint's banned-random rule.  Every line
// carrying a FIRE marker must produce exactly that finding; nothing else
// in this file may fire.  Fixtures are linted, never compiled.
#include <cstdlib>
#include <functional>
#include <random>
#include <string>

namespace fixture {

int
libcDraw()
{
    srand(42); // FIRE(banned-random)
    return rand(); // FIRE(banned-random)
}

long
bsdDraw()
{
    return random(); // FIRE(banned-random)
}

double
posixDraw()
{
    return drand48(); // FIRE(banned-random)
}

std::size_t
textualSeed(const std::string &name)
{
    return std::hash<std::string>{}(name); // FIRE(banned-random)
}

unsigned
entropySeed()
{
    std::random_device rd; // FIRE(banned-random)
    return rd();
}

unsigned
fineToUse(unsigned seed)
{
    // Seeded engines are not banned — only unseeded/textual sources.
    // Production draws flow through common/rng.hh (mt19937_64, seeds
    // forked via Rng::mixSeed).
    return seed * 2862933555777941757u + 3037000493u;
}

} // namespace fixture
