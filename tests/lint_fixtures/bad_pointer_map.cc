// Known-bad corpus for griffin-lint's pointer-keyed-map rule.  Every
// line carrying a FIRE marker must produce exactly that finding; nothing
// else in this file may fire.  Fixtures are linted, never compiled.
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace fixture {

struct Site;

std::unordered_map<const char *, int> hitsByLiteral; // FIRE(pointer-keyed-map)
std::map<Site *, std::string> labelByNode; // FIRE(pointer-keyed-map)

std::unordered_map<std::string, int *> slotByName; // value pointers are fine
std::map<std::shared_ptr<Site>, int> rankByOwner; // smart-pointer keys are fine
std::unordered_map<std::string, int> hitsByName; // content keys are fine

} // namespace fixture
