/**
 * @file
 * BENCH_perf.json schema: v2 "kernels" section round-trip, v1
 * back-compat (historical seeds keep parsing), strict rejection of
 * malformed sections, and the --gate regression band.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runtime/perf_report.hh"

namespace griffin {
namespace {

PerfDocument
sampleDocument()
{
    PerfDocument doc;
    doc.threads = 2;
    doc.sample = 0.01;
    doc.rowCap = 4;
    doc.seed = 1;
    doc.totalWallMs = 12.5;
    PerfEntry e;
    e.experiment = "fig5";
    e.jobs = 144;
    e.wallMs = 10.0;
    e.jobsPerSec = 14.4;
    e.threadUtilization = 0.9;
    e.stages.push_back({"operand_gen", 7, 4.5});
    doc.suite.push_back(std::move(e));
    return doc;
}

std::string
renderJson(const PerfDocument &doc)
{
    std::ostringstream os;
    writePerfJson(os, doc);
    return os.str();
}

TEST(PerfReport, KernelsSectionRoundTrips)
{
    PerfDocument doc = sampleDocument();
    doc.kernels.push_back({"nonzero_masks", "avx2", 131072000, 21.0,
                           0.16});
    doc.kernels.push_back({"mt_temper", "avx2", 31200000, 9.1, 0.29});

    PerfDocument back;
    std::string error;
    ASSERT_TRUE(parsePerfDocument(renderJson(doc), back, error))
        << error;
    EXPECT_EQ(back.schemaVersion, perfSchemaVersion);
    ASSERT_EQ(back.kernels.size(), 2u);
    EXPECT_EQ(back.kernels[0].kernel, "nonzero_masks");
    EXPECT_EQ(back.kernels[0].backend, "avx2");
    EXPECT_EQ(back.kernels[0].ops, 131072000u);
    EXPECT_DOUBLE_EQ(back.kernels[0].totalMs, 21.0);
    EXPECT_DOUBLE_EQ(back.kernels[0].nsPerOp, 0.16);
    EXPECT_EQ(back.kernels[1].kernel, "mt_temper");
    ASSERT_EQ(back.suite.size(), 1u);
    EXPECT_EQ(back.suite[0].experiment, "fig5");
}

TEST(PerfReport, KernelsKeyOmittedWhenEmpty)
{
    const std::string text = renderJson(sampleDocument());
    EXPECT_EQ(text.find("\"kernels\""), std::string::npos);

    PerfDocument back;
    std::string error;
    ASSERT_TRUE(parsePerfDocument(text, back, error)) << error;
    EXPECT_TRUE(back.kernels.empty());
}

TEST(PerfReport, V1DocumentWithoutKernelsStillParses)
{
    // A historical seed: schema_version 1 and no "kernels" key.  The
    // v2 parser must accept it unchanged — CI's --gate compare runs
    // against exactly such documents.
    PerfDocument doc = sampleDocument();
    doc.schemaVersion = 1;
    PerfDocument back;
    std::string error;
    ASSERT_TRUE(parsePerfDocument(renderJson(doc), back, error))
        << error;
    EXPECT_EQ(back.schemaVersion, 1);
    EXPECT_TRUE(back.kernels.empty());
    ASSERT_EQ(back.suite.size(), 1u);
    EXPECT_DOUBLE_EQ(back.suite[0].jobsPerSec, 14.4);
}

TEST(PerfReport, MalformedKernelsEntryRejected)
{
    PerfDocument doc = sampleDocument();
    doc.kernels.push_back({"le_mask", "scalar", 1000, 1.0, 1.0});
    std::string text = renderJson(doc);
    const auto pos = text.find("\"ns_per_op\"");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 11, "\"ns_per_opX\"");

    PerfDocument back;
    std::string error;
    EXPECT_FALSE(parsePerfDocument(text, back, error));
    EXPECT_NE(error.find("ns_per_op"), std::string::npos) << error;
}

TEST(PerfReport, NewerSchemaVersionRejected)
{
    PerfDocument doc = sampleDocument();
    doc.schemaVersion = perfSchemaVersion + 1;
    PerfDocument back;
    std::string error;
    EXPECT_FALSE(parsePerfDocument(renderJson(doc), back, error));
    EXPECT_NE(error.find("schema_version"), std::string::npos)
        << error;
}

PerfDocument
suiteWith(std::initializer_list<std::pair<const char *, double>> rates)
{
    PerfDocument doc;
    for (const auto &r : rates) {
        PerfEntry e;
        e.experiment = r.first;
        e.jobsPerSec = r.second;
        doc.suite.push_back(std::move(e));
    }
    return doc;
}

TEST(PerfReport, GateFlagsOnlyRegressionsBeyondTheBand)
{
    // a: -9% (inside the band), b: -20% (violation), c: improved,
    // old-only and new-only experiments never violate.
    const PerfDocument old_doc =
        suiteWith({{"a", 100.0}, {"b", 100.0}, {"c", 10.0},
                   {"old_only", 50.0}});
    const PerfDocument new_doc =
        suiteWith({{"a", 91.0}, {"b", 80.0}, {"c", 25.0},
                   {"new_only", 1.0}});

    const auto violations =
        perfGateViolations(old_doc, new_doc, 0.10);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rfind("b:", 0), 0u) << violations[0];
}

TEST(PerfReport, GatePassesOnIdenticalDocuments)
{
    const PerfDocument doc = suiteWith({{"a", 100.0}, {"b", 5.0}});
    EXPECT_TRUE(perfGateViolations(doc, doc, 0.10).empty());
}

} // namespace
} // namespace griffin
