# CTest script: end-to-end telemetry smoke.
#
#  (a) `run fig5 fig6 --trace` emits a Chrome-trace JSON covering all
#      six pipeline stages (fig5 exercises the B-side five, fig6 adds
#      a_schedule) while the --out row document stays byte-identical
#      to an untraced run at a different thread count — telemetry must
#      be observation only.  A schedule-aware run (ablation_memory_peak)
#      additionally emits the nested 'schedule' span.
#  (b) `run --timings` grows elapsed_ms fields; the default does not.
#  (c) `perf` writes a BENCH_perf.json that `perf --compare` parses,
#      schema-validates, and renders deltas for (self-compare: every
#      delta is +0.0%).
#
# Invoked as:
#   cmake -DGRIFFIN_BENCH=<path> -DWORK_DIR=<dir> -P telemetry_smoke.cmake

if(NOT GRIFFIN_BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DGRIFFIN_BENCH=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(fidelity --sample 0.01 --rowcap 4)

# -- (a) traced vs untraced rows --------------------------------------

execute_process(
    COMMAND "${GRIFFIN_BENCH}" run fig5 fig6 ${fidelity}
            --threads 2 --out "${WORK_DIR}/plain.jsonl"
    OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "untraced run failed (${rc1}):\n${err1}")
endif()

execute_process(
    COMMAND "${GRIFFIN_BENCH}" run fig5 fig6 ${fidelity}
            --threads 4 --trace "${WORK_DIR}/trace.json"
            --out "${WORK_DIR}/traced.jsonl"
    OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "traced run failed (${rc2}):\n${err2}")
endif()

file(READ "${WORK_DIR}/plain.jsonl" rows_plain)
file(READ "${WORK_DIR}/traced.jsonl" rows_traced)
if(NOT rows_plain STREQUAL rows_traced)
    message(FATAL_ERROR "--trace changed the result rows")
endif()
string(LENGTH "${rows_plain}" rows_len)
if(rows_len EQUAL 0)
    message(FATAL_ERROR "result row document is empty")
endif()

file(READ "${WORK_DIR}/trace.json" trace)
if(NOT trace MATCHES "\"traceEvents\"")
    message(FATAL_ERROR "trace file is not a Chrome trace document")
endif()
foreach(stage operand_gen b_schedule a_schedule tile_sim memory_model
        reduce)
    if(NOT trace MATCHES "\"${stage}\"")
        message(FATAL_ERROR "trace has no '${stage}' spans")
    endif()
endforeach()

# -- (a2) schedule-aware runs add the nested schedule span ------------

execute_process(
    COMMAND "${GRIFFIN_BENCH}" run ablation_memory_peak ${fidelity}
            --threads 2 --trace "${WORK_DIR}/sched_trace.json"
    OUTPUT_VARIABLE out_s ERROR_VARIABLE err_s RESULT_VARIABLE rc_s)
if(NOT rc_s EQUAL 0)
    message(FATAL_ERROR "traced ablation_memory_peak run failed "
                        "(${rc_s}):\n${err_s}")
endif()
file(READ "${WORK_DIR}/sched_trace.json" sched_trace)
if(NOT sched_trace MATCHES "\"schedule\"")
    message(FATAL_ERROR
            "schedule-aware trace has no 'schedule' spans")
endif()

# -- (b) --timings opt-in ---------------------------------------------

if(rows_plain MATCHES "elapsed_ms")
    message(FATAL_ERROR "default run emitted elapsed_ms — --timings "
                        "must be opt-in")
endif()

execute_process(
    COMMAND "${GRIFFIN_BENCH}" run fig6 ${fidelity} --threads 2
            --timings --out "${WORK_DIR}/timed.jsonl"
    OUTPUT_VARIABLE out3 ERROR_VARIABLE err3 RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
    message(FATAL_ERROR "--timings run failed (${rc3}):\n${err3}")
endif()
file(READ "${WORK_DIR}/timed.jsonl" rows_timed)
if(NOT rows_timed MATCHES "\"elapsed_ms\": ")
    message(FATAL_ERROR "--timings run emitted no elapsed_ms fields")
endif()

# -- (c) perf artifact + compare --------------------------------------

execute_process(
    COMMAND "${GRIFFIN_BENCH}" perf fig6 ${fidelity} --threads 2
            --out "${WORK_DIR}/BENCH_perf.json"
    OUTPUT_VARIABLE out4 ERROR_VARIABLE err4 RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
    message(FATAL_ERROR "perf run failed (${rc4}):\n${err4}")
endif()
file(READ "${WORK_DIR}/BENCH_perf.json" perf_doc)
if(NOT perf_doc MATCHES "\"schema\": \"griffin_bench_perf\"")
    message(FATAL_ERROR "perf artifact lacks the schema tag")
endif()
if(NOT perf_doc MATCHES "\"stages\": \\[")
    message(FATAL_ERROR "perf artifact has no stage breakdown")
endif()

execute_process(
    COMMAND "${GRIFFIN_BENCH}" perf --compare
            "${WORK_DIR}/BENCH_perf.json" "${WORK_DIR}/BENCH_perf.json"
    OUTPUT_VARIABLE out5 ERROR_VARIABLE err5 RESULT_VARIABLE rc5)
if(NOT rc5 EQUAL 0)
    message(FATAL_ERROR
            "perf --compare rejected its own artifact (${rc5}):\n${err5}")
endif()
if(NOT out5 MATCHES "\\+0\\.0%")
    message(FATAL_ERROR "self-compare rendered a nonzero delta:\n${out5}")
endif()

message(STATUS "telemetry smoke OK: identical rows, six-stage trace, "
               "opt-in timings, valid perf artifact")
