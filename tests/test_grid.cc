/**
 * @file
 * Tests for the named-axis grid API (runtime/grid.hh): compact-syntax
 * parsing, range expansion, builder chaining, deterministic expansion
 * onto SweepSpec with axis-coordinate records, and the fatal()
 * diagnostics for malformed specs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "runtime/grid.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

// ---- parsing --------------------------------------------------------

TEST(GridParse, NumericRanges)
{
    const auto grid =
        GridSpec::parse("weight_lane_bias=0:1:0.25,seed=1..4");
    ASSERT_EQ(grid.axes().size(), 2u);
    EXPECT_EQ(grid.axes()[0].name, "weight_lane_bias");
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"0", "0.25", "0.5", "0.75",
                                        "1"}));
    EXPECT_EQ(grid.axes()[1].name, "seed");
    EXPECT_EQ(grid.axes()[1].values,
              (std::vector<std::string>{"1", "2", "3", "4"}));
    EXPECT_EQ(grid.pointCount(), 20u);
}

TEST(GridParse, SteppedIntegerRange)
{
    const auto grid = GridSpec::parse("row_cap=16:64:16");
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"16", "32", "48", "64"}));
}

TEST(GridParse, CommaListsExtendThePreviousAxis)
{
    // Items without '=' continue the previous axis's value list, so
    // name lists need no special quoting.
    const auto grid =
        GridSpec::parse("arch=Griffin,Sparse.B*,category=b,ab");
    ASSERT_EQ(grid.axes().size(), 2u);
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"Griffin", "Sparse.B*"}));
    EXPECT_EQ(grid.axes()[1].values,
              (std::vector<std::string>{"b", "ab"}));
}

TEST(GridParse, RoutingSpecArchValuesSurviveTheirCommas)
{
    const auto grid =
        GridSpec::parse("arch=B(2,0,0,off),B(2,1,0,on),seed=7");
    ASSERT_EQ(grid.axes().size(), 2u);
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"B(2,0,0,off)",
                                        "B(2,1,0,on)"}));
}

TEST(GridParse, BoolTokensAreCanonicalized)
{
    const auto grid = GridSpec::parse("enforce_dram_bound=on,off");
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"true", "false"}));
}

TEST(GridParse, WhitespaceIsTrimmed)
{
    const auto grid = GridSpec::parse(" seed = 2..3 , row_cap = 8 ");
    ASSERT_EQ(grid.axes().size(), 2u);
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"2", "3"}));
    EXPECT_EQ(grid.axes()[1].values,
              (std::vector<std::string>{"8"}));
}

TEST(GridParse, MixedRangeAndLiteralTokens)
{
    const auto grid = GridSpec::parse("seed=1..3,9");
    EXPECT_EQ(grid.axes()[0].values,
              (std::vector<std::string>{"1", "2", "3", "9"}));
}

// ---- builder --------------------------------------------------------

TEST(GridBuilder, ChainsAndExpandsTokens)
{
    GridSpec grid;
    grid.axis("arch", {"Griffin"})
        .axis("weight_lane_bias", {0.25, 0.75})
        .axis("seed", {"1..2"});
    ASSERT_EQ(grid.axes().size(), 3u);
    EXPECT_TRUE(grid.has("seed"));
    EXPECT_FALSE(grid.has("row_cap"));
    EXPECT_EQ(grid.axes()[1].values,
              (std::vector<std::string>{"0.25", "0.75"}));
    EXPECT_EQ(grid.axes()[2].values,
              (std::vector<std::string>{"1", "2"}));
    EXPECT_EQ(grid.pointCount(), 4u);
}

// ---- expansion onto SweepSpec ---------------------------------------

SweepSpec
tinyBase()
{
    SweepSpec base;
    base.archs = {griffinArch()};
    base.networks = {alexNet()};
    base.categories = {DnnCategory::B};
    RunOptions fast;
    fast.sim.sampleFraction = 0.02;
    fast.sim.minSampledTiles = 2;
    fast.rowCap = 16;
    base.optionVariants = {fast};
    return base;
}

TEST(GridExpand, CartesianProductInDeclarationOrder)
{
    GridSpec grid;
    grid.axis("weight_lane_bias", {0.25, 0.75}).axis("seed", {"1..2"});
    const auto spec = grid.toSweepSpec(tinyBase());

    // First declared axis varies slowest.
    ASSERT_EQ(spec.optionVariants.size(), 4u);
    EXPECT_DOUBLE_EQ(spec.optionVariants[0].weightLaneBias, 0.25);
    EXPECT_EQ(spec.optionVariants[0].seed, 1u);
    EXPECT_DOUBLE_EQ(spec.optionVariants[1].weightLaneBias, 0.25);
    EXPECT_EQ(spec.optionVariants[1].seed, 2u);
    EXPECT_DOUBLE_EQ(spec.optionVariants[2].weightLaneBias, 0.75);
    EXPECT_EQ(spec.optionVariants[2].seed, 1u);
    EXPECT_DOUBLE_EQ(spec.optionVariants[3].weightLaneBias, 0.75);
    EXPECT_EQ(spec.optionVariants[3].seed, 2u);

    // Every variant's coordinates are recorded in axis order.
    ASSERT_EQ(spec.optionCoords.size(), 4u);
    EXPECT_EQ(spec.optionCoords[0],
              (std::vector<AxisCoordinate>{{"weight_lane_bias", "0.25"},
                                           {"seed", "1"}}));
    EXPECT_EQ(spec.optionCoords[3],
              (std::vector<AxisCoordinate>{{"weight_lane_bias", "0.75"},
                                           {"seed", "2"}}));

    // Unswept base fields survive into every variant.
    for (const auto &opt : spec.optionVariants) {
        EXPECT_EQ(opt.rowCap, 16);
        EXPECT_DOUBLE_EQ(opt.sim.sampleFraction, 0.02);
    }
}

TEST(GridExpand, IdentityAxesOverrideTheBase)
{
    GridSpec grid;
    grid.axis("arch", {"Sparse.B*", "B(2,0,0,off)"})
        .axis("network", {"bert"})
        .axis("category", {"dense", "ab"});
    const auto spec = grid.toSweepSpec(tinyBase());
    ASSERT_EQ(spec.archs.size(), 2u);
    EXPECT_EQ(spec.archs[0].name, "Sparse.B*");
    EXPECT_EQ(spec.archs[1].name, "B(2,0,0,off)");
    ASSERT_EQ(spec.networks.size(), 1u);
    EXPECT_EQ(spec.networks[0].name, "BERT");
    EXPECT_EQ(spec.categories,
              (std::vector<DnnCategory>{DnnCategory::Dense,
                                        DnnCategory::AB}));
    // No RunOptions axis: one variant, one (empty) coordinate record.
    EXPECT_EQ(spec.optionVariants.size(), 1u);
    ASSERT_EQ(spec.optionCoords.size(), 1u);
    EXPECT_TRUE(spec.optionCoords[0].empty());
}

TEST(GridExpand, JobsCarryTheirCoordinates)
{
    GridSpec grid;
    grid.axis("weight_lane_bias", {0.25, 0.75});
    const auto spec = grid.toSweepSpec(tinyBase());
    const auto jobs = expandSweep(spec);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].coords,
              (std::vector<AxisCoordinate>{
                  {"weight_lane_bias", "0.25"}}));
    EXPECT_EQ(jobs[1].coords,
              (std::vector<AxisCoordinate>{
                  {"weight_lane_bias", "0.75"}}));
    EXPECT_EQ(coordsLabel(jobs[1].coords), "weight_lane_bias=0.75");
}

// ---- end-to-end: distinct self-describing rows ----------------------

TEST(GridSweep, TwoVariantSweepProducesDistinctRows)
{
    // Regression for the pre-grid API: rows from different
    // optionVariants were indistinguishable in the serialized output.
    GridSpec grid;
    grid.axis("weight_lane_bias", {0.25, 0.75});
    const auto spec = grid.toSweepSpec(tinyBase());
    const auto sweep = runSweep(spec, 2);
    ASSERT_EQ(sweep.results().size(), 2u);

    std::ostringstream row0, row1;
    const auto rows = sweepRows(sweep);
    writeJson(row0, {rows[0]});
    writeJson(row1, {rows[1]});
    EXPECT_NE(row0.str(), row1.str())
        << "rows from different variants must be distinguishable";
    EXPECT_NE(row0.str().find("\"weight_lane_bias\": 0.25"),
              std::string::npos);
    EXPECT_NE(row1.str().find("\"weight_lane_bias\": 0.75"),
              std::string::npos);
    EXPECT_NE(row0.str().find(
                  "\"coords\": {\"weight_lane_bias\": \"0.25\"}"),
              std::string::npos);
}

TEST(GridSweep, AnnotatedJsonIsThreadCountInvariant)
{
    GridSpec grid;
    grid.axis("weight_lane_bias", {0.25, 0.75}).axis("seed", {"1..2"});
    const auto spec = grid.toSweepSpec(tinyBase());
    std::ostringstream serial, parallel;
    writeJson(serial, runSweep(spec, 1));
    writeJson(parallel, runSweep(spec, 4));
    EXPECT_EQ(serial.str(), parallel.str());
}

// ---- diagnostics ----------------------------------------------------

TEST(GridDeathTest, UnknownAxisSuggestsNearestName)
{
    GridSpec grid;
    EXPECT_EXIT(grid.axis("weight_lane_bis", {"0.5"}),
                testing::ExitedWithCode(exitUsageError),
                "did you mean 'weight_lane_bias'");
    EXPECT_EXIT(GridSpec::parse("sed=1..4"),
                testing::ExitedWithCode(exitUsageError), "did you mean 'seed'");
}

TEST(GridDeathTest, MalformedRangesReportTheToken)
{
    EXPECT_EXIT(GridSpec::parse("seed=8..1"),
                testing::ExitedWithCode(exitUsageError),
                "malformed range '8..1' on axis 'seed'");
    EXPECT_EXIT(GridSpec::parse("row_cap=1:64:0"),
                testing::ExitedWithCode(exitUsageError),
                "malformed range '1:64:0'");
    EXPECT_EXIT(GridSpec::parse("weight_lane_bias=0:1"),
                testing::ExitedWithCode(exitUsageError),
                "expected <lo>:<hi>:<step>");
    EXPECT_EXIT(GridSpec::parse("seed=1..x"),
                testing::ExitedWithCode(exitUsageError), "not an integer");
    EXPECT_EXIT(GridSpec::parse("weight_lane_bias=0.5..1.5"),
                testing::ExitedWithCode(exitUsageError),
                "'..' ranges are integer-only");
}

TEST(GridDeathTest, BadValuesReportTheToken)
{
    EXPECT_EXIT(GridSpec::parse("weight_lane_bias=fast"),
                testing::ExitedWithCode(exitUsageError),
                "'fast' is not a number");
    EXPECT_EXIT(GridSpec::parse("enforce_dram_bound=maybe"),
                testing::ExitedWithCode(exitUsageError),
                "'maybe' is not a boolean");
}

TEST(GridDeathTest, StructuralErrorsAreFatal)
{
    EXPECT_EXIT(GridSpec::parse(""), testing::ExitedWithCode(exitUsageError),
                "empty grid spec");
    EXPECT_EXIT(GridSpec::parse("0.5,seed=1"),
                testing::ExitedWithCode(exitUsageError),
                "before any 'axis=value' item");
    EXPECT_EXIT(GridSpec::parse("seed=1,seed=2"),
                testing::ExitedWithCode(exitUsageError), "declared twice");
    EXPECT_EXIT(GridSpec::parse("seed="), testing::ExitedWithCode(exitUsageError),
                "has no values");

    GridSpec grid;
    grid.axis("seed", {"1..2"});
    SweepSpec two_variants = tinyBase();
    two_variants.optionVariants.push_back(
        two_variants.optionVariants[0]);
    EXPECT_EXIT(grid.toSweepSpec(two_variants),
                testing::ExitedWithCode(exitUsageError),
                "exactly one base RunOptions");
}

} // namespace
} // namespace griffin
