/**
 * @file
 * Tests for the calibrated power/area cost model: reproduction of the
 * Table VII structure and the efficiency metrics of Definition V.1.
 */

#include <gtest/gtest.h>

#include "arch/presets.hh"
#include "power/cost_model.hh"

namespace griffin {
namespace {

/** |got - want| / want */
double
relErr(double got, double want)
{
    return std::abs(got - want) / want;
}

TEST(CostModel, BaselineMatchesTableSevenClosely)
{
    // Baseline power 151 mW / area 217 kum^2: the model is calibrated
    // on this row, so it must be tight.
    auto cost = estimateCost(denseBaseline());
    EXPECT_LT(relErr(cost.powerMw.total(), 151.0), 0.03);
    EXPECT_LT(relErr(cost.areaKum2.total(), 217.0), 0.03);
    // Component spot checks.
    EXPECT_NEAR(cost.powerMw.mul, 62.6, 0.1);
    EXPECT_NEAR(cost.powerMw.acc, 10.9, 0.1);
    EXPECT_NEAR(cost.powerMw.adt, 21.8, 0.1);
    EXPECT_DOUBLE_EQ(cost.powerMw.ctrl, 0.0);
    EXPECT_DOUBLE_EQ(cost.powerMw.abuf, 0.0);
    EXPECT_NEAR(cost.areaKum2.sram, 180.0, 1.0); // 176 + 4*bw(=1)
}

TEST(CostModel, SparseRowsLandNearTableSeven)
{
    // The sparse rows mix calibrated and structural terms; hold them
    // to 20% on totals (deviations are documented in calibration.hh).
    const struct
    {
        ArchConfig arch;
        double power;
        double area;
    } rows[] = {
        {sparseBStar(), 206.0, 258.0},  {tclB(), 209.0, 233.0},
        {sparseAStar(), 223.0, 253.0},  {sparseABStar(), 282.0, 282.0},
        {griffinArch(), 284.0, 286.0},  {tdashAB(), 284.0, 276.0},
    };
    for (const auto &row : rows) {
        auto cost = estimateCost(row.arch);
        EXPECT_LT(relErr(cost.powerMw.total(), row.power), 0.20)
            << row.arch.name << " power "
            << cost.powerMw.total() << " vs " << row.power;
        EXPECT_LT(relErr(cost.areaKum2.total(), row.area), 0.20)
            << row.arch.name << " area "
            << cost.areaKum2.total() << " vs " << row.area;
    }
}

TEST(CostModel, SparTenIsByFarTheMostExpensive)
{
    auto sparten = estimateCost(sparTenAB());
    EXPECT_LT(relErr(sparten.powerMw.total(), 991.0), 0.10);
    EXPECT_LT(relErr(sparten.areaKum2.total(), 1139.0), 0.10);
    for (const auto &arch : tableSevenPresets()) {
        if (arch.name == "SparTen.AB")
            continue;
        EXPECT_LT(estimateCost(arch).powerMw.total(),
                  sparten.powerMw.total())
            << arch.name;
    }
}

TEST(CostModel, OverheadOrderingMatchesTableSeven)
{
    // Table VII rows are "in the order of increasing power
    // efficiency"; in raw power the ordering baseline < single sparse
    // < dual sparse must hold structurally.
    const double base = estimateCost(denseBaseline()).powerMw.total();
    const double b_star = estimateCost(sparseBStar()).powerMw.total();
    const double ab_star = estimateCost(sparseABStar()).powerMw.total();
    const double griffin = estimateCost(griffinArch()).powerMw.total();
    EXPECT_LT(base, b_star);
    EXPECT_LT(b_star, ab_star);
    // Griffin costs only marginally more than the rigid dual design
    // (paper: ~1%; allow 5%).
    EXPECT_GT(griffin, ab_star);
    EXPECT_LT(griffin / ab_star, 1.05);
}

TEST(CostModel, HybridPaysUnionOfMorphConfigs)
{
    // Griffin's BMUX must be the conf.A width (5), not the dual (3),
    // so its MUX power exceeds Sparse.AB*'s.
    auto griffin = estimateCost(griffinArch());
    auto dual = estimateCost(sparseABStar());
    EXPECT_GT(griffin.powerMw.mux, dual.powerMw.mux);
    EXPECT_EQ(griffin.powerMw.abuf, dual.powerMw.abuf); // same depth 9
}

TEST(CostModel, PeakTopsIsGeometryTimesFrequency)
{
    // 1024 MACs x 0.8 GHz x 2 ops = 1.6384 TOPS.
    EXPECT_NEAR(densePeakTops(denseBaseline()), 1.6384, 1e-9);
}

TEST(CostModel, BaselineDenseEfficiencyIsTableScale)
{
    // 1.6384 TOPS / 0.151 W ~ 10.8 TOPS/W; /0.217 mm^2 ~ 7.5 TOPS/mm^2.
    EXPECT_NEAR(
        effectiveTopsPerWatt(denseBaseline(), DnnCategory::Dense, 1.0),
        10.8, 0.6);
    EXPECT_NEAR(
        effectiveTopsPerMm2(denseBaseline(), DnnCategory::Dense, 1.0),
        7.5, 0.4);
}

TEST(CostModel, EffectiveEfficiencyScalesWithSpeedup)
{
    const auto arch = sparseBStar();
    EXPECT_NEAR(effectiveTopsPerWatt(arch, DnnCategory::B, 2.0),
                2.0 * effectiveTopsPerWatt(arch, DnnCategory::B, 1.0),
                1e-9);
    EXPECT_NEAR(effectiveTopsPerMm2(arch, DnnCategory::B, 3.0),
                3.0 * effectiveTopsPerMm2(arch, DnnCategory::B, 1.0),
                1e-9);
}

TEST(CostModel, SparsityTaxOnDenseModels)
{
    // Running dense models, every sparse design is less efficient than
    // the baseline (paper Fig. 8(a)): idle sparse logic still leaks.
    // Griffin's tax (paper: 29% power) must be far below SparTen's.
    const auto dense = DnnCategory::Dense;
    const double base = effectiveTopsPerWatt(denseBaseline(), dense, 1.0);
    const double griffin = effectiveTopsPerWatt(griffinArch(), dense, 1.0);
    const double sparten = effectiveTopsPerWatt(sparTenAB(), dense, 1.0);
    EXPECT_LT(griffin, base);
    EXPECT_LT(sparten, griffin);
    const double griffin_tax = 1.0 - griffin / base;
    const double sparten_tax = 1.0 - sparten / base;
    EXPECT_GT(griffin_tax, 0.10);
    EXPECT_LT(griffin_tax, 0.40); // paper: 29%
    EXPECT_GT(sparten_tax, 0.50); // paper's gating is more optimistic
}

TEST(CostModel, RuntimePowerIsBelowBuiltPowerOffMode)
{
    // Griffin running dense draws far less than its all-on figure, but
    // running dual sparse it draws the full Table VII power.
    const double built = estimateCost(griffinArch()).powerMw.total();
    const double at_dense =
        estimateCost(griffinArch(), DnnCategory::Dense).powerMw.total();
    const double at_ab =
        estimateCost(griffinArch(), DnnCategory::AB).powerMw.total();
    EXPECT_LT(at_dense, 0.8 * built);
    EXPECT_NEAR(at_ab, built, 0.05 * built);
}

TEST(CostModel, AreaIsWorkloadIndependent)
{
    const auto built = estimateCost(griffinArch()).areaKum2.total();
    for (DnnCategory cat : allCategories) {
        EXPECT_DOUBLE_EQ(
            estimateCost(griffinArch(), cat).areaKum2.total(), built);
    }
}

TEST(CostModel, SingleSidedSparTenIsCheaperThanDual)
{
    EXPECT_LT(estimateCost(sparTenB()).powerMw.total(),
              estimateCost(sparTenAB()).powerMw.total());
    EXPECT_LT(estimateCost(sparTenA()).areaKum2.total(),
              estimateCost(sparTenAB()).areaKum2.total());
}

TEST(CostModel, BreakdownTotalsSumComponents)
{
    auto cost = estimateCost(griffinArch());
    const auto &p = cost.powerMw;
    EXPECT_NEAR(p.total(),
                p.ctrl + p.shf + p.abuf + p.bbuf + p.regwr + p.acc +
                    p.mul + p.adt + p.mux + p.sram,
                1e-12);
}

TEST(CostModelDeathTest, NonPositiveSpeedupPanics)
{
    EXPECT_DEATH(
        effectiveTopsPerWatt(denseBaseline(), DnnCategory::Dense, 0.0),
        "non-positive speedup");
}

} // namespace
} // namespace griffin
