/**
 * @file
 * Tests for the minimal JSON parser (common/json.hh): the documents
 * our own result sinks emit must round-trip, and malformed input must
 * be rejected with a located error.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "runtime/result_sink.hh"

namespace griffin {
namespace {

JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error;
    return v;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_DOUBLE_EQ(parseOk("-12.5e2").asDouble(), -1250.0);
    EXPECT_EQ(parseOk("9007199254740993").asInt(), 9007199254740993LL);
    EXPECT_EQ(parseOk("18446744073709551615").asUint(),
              18446744073709551615ULL);
    EXPECT_EQ(parseOk("\"a\\n\\\"b\\u0041\"").asString(), "a\n\"bA");
}

TEST(Json, ParsesNestedDocuments)
{
    const auto v = parseOk(
        "{\"name\": \"fig5\", \"rows\": [1, 2.5, {\"x\": []}], "
        "\"flag\": false}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.find("name")->asString(), "fig5");
    const auto *rows = v.find("rows");
    ASSERT_TRUE(rows != nullptr && rows->isArray());
    EXPECT_EQ(rows->items.size(), 3u);
    EXPECT_EQ(rows->items[0].asInt(), 1);
    EXPECT_TRUE(rows->items[2].find("x")->isArray());
    EXPECT_FALSE(v.find("flag")->asBool());
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, PreservesMemberOrderAndRawNumberTokens)
{
    const auto v = parseOk("{\"b\": 1, \"a\": 0.030000000000000002}");
    EXPECT_EQ(v.members[0].first, "b");
    EXPECT_EQ(v.members[1].first, "a");
    // The raw token survives, so shortest-round-trip doubles re-parse
    // to the exact bit pattern.
    EXPECT_EQ(v.members[1].second.text, "0.030000000000000002");
    EXPECT_DOUBLE_EQ(v.members[1].second.asDouble(),
                     0.030000000000000002);
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated",
          "{\"a\": 1,}", "01a", "\"bad\\q\""}) {
        EXPECT_FALSE(parseJson(bad, v, error)) << bad;
        EXPECT_NE(error.find("offset"), std::string::npos);
    }
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(deep, v, error));
}

TEST(Json, RoundTripsSinkOutput)
{
    // A real sink row parses back with the fields the merge tooling
    // reads.
    NetworkResult r;
    r.network = "alex,net\"x"; // exercise escaping
    r.arch = "B(4,0,1,on)";
    r.category = DnnCategory::AB;
    r.denseCycles = 123456789012345;
    r.totalCycles = 7;
    r.speedup = 0.1 + 0.2; // non-terminating binary fraction
    LayerResult lr;
    lr.name = "conv1";
    lr.macs = 42;
    lr.speedup = 3.25;
    r.layers.push_back(lr);

    ResultRow row;
    row.result = r;
    row.annotated = true;
    row.options.seed = 11;
    row.coords.push_back({"arch", "B(4,0,1,on)"});
    row.experiment = "fig5";

    std::ostringstream os;
    writeJsonLines(os, std::vector<ResultRow>{row});
    auto line = os.str();
    line.pop_back(); // trailing newline

    const auto v = parseOk(line);
    EXPECT_EQ(v.find("experiment")->asString(), "fig5");
    EXPECT_EQ(v.find("network")->asString(), "alex,net\"x");
    EXPECT_EQ(v.find("arch")->asString(), "B(4,0,1,on)");
    EXPECT_EQ(v.find("category")->asString(), "DNN.AB");
    EXPECT_EQ(v.find("dense_cycles")->asInt(), 123456789012345);
    EXPECT_EQ(v.find("speedup")->asDouble(), 0.1 + 0.2);
    EXPECT_EQ(v.find("options")->find("seed")->asUint(), 11u);
    EXPECT_EQ(v.find("coords")->find("arch")->asString(),
              "B(4,0,1,on)");
    const auto *layers = v.find("layers");
    ASSERT_TRUE(layers != nullptr && layers->isArray());
    EXPECT_EQ(layers->items[0].find("name")->asString(), "conv1");
    EXPECT_EQ(layers->items[0].find("macs")->asInt(), 42);
}

} // namespace
} // namespace griffin
