/**
 * @file
 * Property tests: every scheduling engine, replayed, must reproduce
 * the reference dense GEMM exactly — across sparsities, routing
 * configurations, shuffle settings, and ragged tile shapes.  This is
 * the functional backbone of the whole simulator.
 */

#include <gtest/gtest.h>

#include "arch/overhead.hh"
#include "common/rng.hh"
#include "sched/a_arbiter.hh"
#include "sched/b_preprocess.hh"
#include "sched/dual_scheduler.hh"
#include "sched/verify.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

const TileShape kShape{}; // (16,16,4)

struct Scenario
{
    double a_sparsity;
    double b_sparsity;
    std::int64_t m, k, n;
    bool shuffle;
};

std::string
scenarioName(const testing::TestParamInfo<Scenario> &info)
{
    const auto &s = info.param;
    std::string name = "a" + std::to_string(int(s.a_sparsity * 100)) +
                       "_b" + std::to_string(int(s.b_sparsity * 100)) +
                       "_m" + std::to_string(s.m) + "k" +
                       std::to_string(s.k) + "n" + std::to_string(s.n) +
                       (s.shuffle ? "_shon" : "_shoff");
    return name;
}

class ScheduleEquivalence : public testing::TestWithParam<Scenario>
{
  protected:
    void
    SetUp() override
    {
        const auto &s = GetParam();
        Rng rng(0xfeed + static_cast<std::uint64_t>(s.m * 31 + s.k * 7 +
                                                    s.n));
        a_ = randomSparse(static_cast<std::size_t>(s.m),
                          static_cast<std::size_t>(s.k), s.a_sparsity,
                          rng);
        b_ = randomSparse(static_cast<std::size_t>(s.k),
                          static_cast<std::size_t>(s.n), s.b_sparsity,
                          rng);
    }

    MatrixI8 a_, b_;
};

const Scenario kScenarios[] = {
    {0.0, 0.8, 8, 64, 32, true},    // weight sparse, aligned
    {0.0, 0.8, 8, 64, 32, false},
    {0.5, 0.0, 8, 64, 32, true},    // activation sparse
    {0.5, 0.8, 8, 64, 32, true},    // dual sparse
    {0.5, 0.8, 8, 64, 32, false},
    {0.9, 0.95, 4, 48, 16, true},   // extreme sparsity
    {0.0, 0.0, 4, 32, 16, true},    // fully dense
    {1.0, 0.8, 4, 32, 16, true},    // all-zero A
    {0.5, 1.0, 4, 32, 16, true},    // all-zero B
    {0.4, 0.7, 7, 50, 21, true},    // ragged everything
    {0.4, 0.7, 5, 17, 9, false},    // tiny ragged
    {0.6, 0.85, 13, 130, 40, true}, // multi-tile both axes
};

// --- Sparse.B engine -------------------------------------------------

TEST_P(ScheduleEquivalence, BPreprocessReplaysToReferenceGemm)
{
    const Borrow db{4, 0, 1};
    Shuffler sh(GetParam().shuffle, kShape.k0);
    for (std::int64_t col_base = 0;
         col_base < static_cast<std::int64_t>(b_.cols());
         col_base += kShape.n0) {
        TileViewB vb(b_, kShape, col_base);
        auto stream = preprocessB(vb, db, sh, true);
        // Every B nonzero of the tile is scheduled exactly once.
        std::int64_t tile_nnz = 0;
        for (std::int64_t k1 = 0; k1 < vb.steps(); ++k1)
            for (int k2 = 0; k2 < kShape.k0; ++k2)
                for (int n = 0; n < kShape.n0; ++n)
                    tile_nnz += vb.nonzero(k1, k2, n);
        EXPECT_EQ(stream.scheduledElems(), tile_nnz);

        BorrowWindow bounds;
        bounds.steps = 1 + db.d1;
        bounds.laneDist = db.d2;
        bounds.colDist = db.d3;
        std::string err;
        EXPECT_TRUE(checkScheduleBounds(stream.ops(), bounds, &err))
            << err;

        for (std::int64_t row_base = 0;
             row_base < static_cast<std::int64_t>(a_.rows());
             row_base += kShape.m0) {
            auto got = replayBSchedule(stream, a_, b_, row_base,
                                       col_base, kShape);
            auto want = referenceTile(a_, b_, row_base, col_base,
                                      kShape);
            EXPECT_EQ(got, want)
                << "row " << row_base << " col " << col_base;
        }
    }
}

TEST_P(ScheduleEquivalence, BPreprocessOtherWindows)
{
    // Sweep several routing shapes on the first tile only.
    const Borrow windows[] = {{1, 0, 0}, {2, 2, 0}, {8, 0, 1},
                              {2, 1, 2}, {6, 0, 0}};
    Shuffler sh(GetParam().shuffle, kShape.k0);
    TileViewB vb(b_, kShape, 0);
    for (const auto &db : windows) {
        auto stream = preprocessB(vb, db, sh, true);
        auto got = replayBSchedule(stream, a_, b_, 0, 0, kShape);
        auto want = referenceTile(a_, b_, 0, 0, kShape);
        EXPECT_EQ(got, want) << "window (" << db.d1 << "," << db.d2
                             << "," << db.d3 << ")";
    }
}

// --- Sparse.A engine -------------------------------------------------

TEST_P(ScheduleEquivalence, AArbiterReplaysToReferenceGemm)
{
    const Borrow da{2, 1, 1};
    Shuffler sh(GetParam().shuffle, kShape.k0);
    for (std::int64_t row_base = 0;
         row_base < static_cast<std::int64_t>(a_.rows());
         row_base += kShape.m0) {
        TileViewA va(a_, kShape, row_base);
        auto result = scheduleA(va, da, sh, 1 + da.d1, true);

        std::int64_t tile_nnz = 0;
        for (std::int64_t k1 = 0; k1 < va.steps(); ++k1)
            for (int k2 = 0; k2 < kShape.k0; ++k2)
                for (int m = 0; m < kShape.m0; ++m)
                    tile_nnz += va.nonzero(k1, k2, m);
        EXPECT_EQ(result.stats.ops, tile_nnz);

        BorrowWindow bounds;
        bounds.steps = 1 + da.d1;
        bounds.laneDist = da.d2;
        bounds.rowDist = da.d3;
        std::string err;
        EXPECT_TRUE(checkScheduleBounds(result.ops, bounds, &err)) << err;

        for (std::int64_t col_base = 0;
             col_base < static_cast<std::int64_t>(b_.cols());
             col_base += kShape.n0) {
            auto got = replayASchedule(result.ops, sh, a_, b_, row_base,
                                       col_base, kShape);
            auto want = referenceTile(a_, b_, row_base, col_base,
                                      kShape);
            EXPECT_EQ(got, want)
                << "row " << row_base << " col " << col_base;
        }
    }
}

// --- Dual engine, preprocessed (Griffin) ------------------------------

TEST_P(ScheduleEquivalence, DualPreprocessedReplaysToReferenceGemm)
{
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1,
                                             GetParam().shuffle);
    Shuffler sh(cfg.shuffle, kShape.k0);
    for (std::int64_t col_base = 0;
         col_base < static_cast<std::int64_t>(b_.cols());
         col_base += kShape.n0) {
        TileViewB vb(b_, kShape, col_base);
        auto stream = preprocessB(vb, cfg.b, sh, false);
        for (std::int64_t row_base = 0;
             row_base < static_cast<std::int64_t>(a_.rows());
             row_base += kShape.m0) {
            TileViewA va(a_, kShape, row_base);
            auto dual = scheduleDual(va, vb, cfg, sh, &stream, 9.0,
                                     true);
            EXPECT_EQ(static_cast<std::int64_t>(dual.ops.size()),
                      dual.effectualPairs);
            auto got = replayDualSchedule(dual.ops, a_, b_, row_base,
                                          col_base, kShape);
            auto want = referenceTile(a_, b_, row_base, col_base,
                                      kShape);
            EXPECT_EQ(got, want)
                << "row " << row_base << " col " << col_base;
        }
    }
}

TEST_P(ScheduleEquivalence, DualWiderWindowsStayCorrect)
{
    const RoutingConfig configs[] = {
        RoutingConfig::sparseAB(1, 1, 0, 3, 1, 1, GetParam().shuffle),
        RoutingConfig::sparseAB(0, 0, 0, 4, 0, 2, GetParam().shuffle),
        RoutingConfig::sparseAB(2, 0, 1, 2, 0, 0, GetParam().shuffle),
    };
    for (const auto &cfg : configs) {
        Shuffler sh(cfg.shuffle, kShape.k0);
        TileViewA va(a_, kShape, 0);
        TileViewB vb(b_, kShape, 0);
        auto stream = preprocessB(vb, cfg.b, sh, false);
        auto dual = scheduleDual(va, vb, cfg, sh, &stream, 16.0, true);
        auto got = replayDualSchedule(dual.ops, a_, b_, 0, 0, kShape);
        auto want = referenceTile(a_, b_, 0, 0, kShape);
        EXPECT_EQ(got, want) << cfg.str();
    }
}

// --- Dual engine, on-the-fly (TensorDash) -----------------------------

TEST_P(ScheduleEquivalence, DualOnTheFlyReplaysToReferenceGemm)
{
    const auto cfg = RoutingConfig::sparseAB(3, 1, 0, 3, 1, 0, false,
                                             /*preprocess_b=*/false);
    Shuffler sh(cfg.shuffle, kShape.k0);
    TileViewA va(a_, kShape, 0);
    TileViewB vb(b_, kShape, 0);
    auto dual = scheduleDual(va, vb, cfg, sh, nullptr, 4.0, true);
    auto got = replayDualSchedule(dual.ops, a_, b_, 0, 0, kShape);
    auto want = referenceTile(a_, b_, 0, 0, kShape);
    EXPECT_EQ(got, want);
}

// --- Timing sanity across the same sweep -------------------------------

TEST_P(ScheduleEquivalence, SparseCyclesNeverExceedDenseAndRespectIdeal)
{
    const auto &s = GetParam();
    Shuffler sh(s.shuffle, kShape.k0);
    const auto dense_steps = stepsForK(s.k, kShape.k0);

    const Borrow db{4, 0, 1};
    TileViewB vb(b_, kShape, 0);
    auto stream = preprocessB(vb, db, sh, false);
    EXPECT_LE(stream.cycles(), dense_steps);
    // Ideal bound: cannot beat window depth or the nnz of the most
    // loaded stream slot.
    EXPECT_GE(stream.cycles() * (1 + db.d1), dense_steps == 0
                                                 ? 0
                                                 : dense_steps -
                                                       (1 + db.d1));

    const Borrow da{2, 1, 0};
    TileViewA va(a_, kShape, 0);
    auto a_result = scheduleA(va, da, sh, 3.0, false);
    EXPECT_LE(a_result.stats.cycles, dense_steps);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleEquivalence,
                         testing::ValuesIn(kScenarios), scenarioName);

} // namespace
} // namespace griffin
