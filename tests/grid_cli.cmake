# CTest script: the acceptance bar for the named-axis grid CLI.  Run
# bench_runner with a --grid spec on 1 and 8 threads and assert the
# JSON documents (a) are byte-identical and (b) carry the axis
# coordinates of every variant, so rows are self-describing.
#
# Invoked as:
#   cmake -DBENCH_RUNNER=<path> -DWORK_DIR=<dir> -P grid_cli.cmake

if(NOT BENCH_RUNNER OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DBENCH_RUNNER=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args
    --grid "weight_lane_bias=0:1:0.5"
    --archs Sparse.B* --networks alexnet --cats b
    --sample 0.02 --rowcap 32)

foreach(threads 1 8)
    execute_process(
        COMMAND "${BENCH_RUNNER}" ${common_args} --threads ${threads}
                --json "${WORK_DIR}/grid_t${threads}.json"
        OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "bench_runner --grid failed on ${threads} threads "
                "(${rc}):\n${err}")
    endif()
endforeach()

file(READ "${WORK_DIR}/grid_t1.json" doc1)
file(READ "${WORK_DIR}/grid_t8.json" doc8)
if(NOT doc1 STREQUAL doc8)
    message(FATAL_ERROR
            "--grid sweep JSON differs between --threads 1 and 8")
endif()

foreach(value 0 0.5 1)
    if(NOT doc1 MATCHES "\"coords\": {\"weight_lane_bias\": \"${value}\"}")
        message(FATAL_ERROR
                "JSON rows lack the weight_lane_bias=${value} axis "
                "coordinate:\n${doc1}")
    endif()
endforeach()

message(STATUS "grid CLI OK: coordinates present, thread-count invariant")
