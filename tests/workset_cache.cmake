# CTest script: the acceptance bar for the workset cache.  One
# arch-axis experiment slice (fig8 narrowed to one network) is run
# twice sharing a --workset-cache-file and assert
#   (a) the .jsonl result documents are byte-identical (workset
#       persistence must never change results), and
#   (b) the warm run reports workset_cache_stats load_hits > 0 (the
#       cache file actually skipped operand generation).
# A third run with a tiny --workset-budget-mb must still be
# byte-identical (eviction changes hit rates, never results).
#
# Invoked as:
#   cmake -DGRIFFIN_BENCH=<path> -DWORK_DIR=<dir> -P workset_cache.cmake

if(NOT GRIFFIN_BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DGRIFFIN_BENCH=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_args
    run fig8
    --grid "network=alexnet"
    --sample 0.02 --rowcap 8 --threads 2
    --workset-cache-file "${WORK_DIR}/worksets.grfw")

foreach(run 1 2)
    execute_process(
        COMMAND "${GRIFFIN_BENCH}" ${common_args}
                --out "${WORK_DIR}/run${run}.jsonl"
        OUTPUT_VARIABLE out${run} ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "workset-cached run ${run} failed (${rc}):\n${err}")
    endif()
endforeach()

# (a) byte-identical result documents.
file(READ "${WORK_DIR}/run1.jsonl" doc1)
file(READ "${WORK_DIR}/run2.jsonl" doc2)
if(NOT doc1 STREQUAL doc2)
    message(FATAL_ERROR "workset-cached re-run changed the results")
endif()
string(LENGTH "${doc1}" doc1_len)
if(doc1_len EQUAL 0)
    message(FATAL_ERROR "results document is empty")
endif()

# (b) cold run loads nothing; warm run is served from the file.
string(REGEX MATCH "\"workset_cache_stats\": [^\n]*" stats1 "${out1}")
string(REGEX MATCH "\"workset_cache_stats\": [^\n]*" stats2 "${out2}")
if(stats1 MATCHES "\"load_hits\": [1-9]")
    message(FATAL_ERROR "cold run reported workset load hits:\n${out1}")
endif()
if(NOT stats2 MATCHES "\"load_hits\": [1-9]")
    message(FATAL_ERROR
            "warm run reported no workset load hits — the cache file "
            "did not skip any generation:\n${out2}")
endif()

# (c) a starvation-level byte budget still returns correct results.
execute_process(
    COMMAND "${GRIFFIN_BENCH}" ${common_args} --workset-budget-mb 1
            --out "${WORK_DIR}/run3.jsonl"
    OUTPUT_VARIABLE out3 ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "budgeted run failed (${rc}):\n${err}")
endif()
file(READ "${WORK_DIR}/run3.jsonl" doc3)
if(NOT doc3 STREQUAL doc1)
    message(FATAL_ERROR "workset eviction changed the results")
endif()

message(STATUS
        "workset cache OK: byte-identical cold/warm/budgeted runs, "
        "warm load hits present")
