/**
 * @file
 * Tests for the rotation-based load-balancing shuffle.
 */

#include <set>

#include <gtest/gtest.h>

#include "tensor/shuffle.hh"

namespace griffin {
namespace {

TEST(Shuffle, DisabledIsIdentity)
{
    Shuffler sh(false, 16);
    for (std::int64_t step = 0; step < 10; ++step)
        for (int lane = 0; lane < 16; ++lane)
            EXPECT_EQ(sh.apply(step, lane), lane);
}

TEST(Shuffle, IsAPermutationPerStep)
{
    Shuffler sh(true, 16, 4);
    for (std::int64_t step = 0; step < 8; ++step) {
        std::set<int> targets;
        for (int lane = 0; lane < 16; ++lane)
            targets.insert(sh.apply(step, lane));
        EXPECT_EQ(targets.size(), 16u) << "step " << step;
    }
}

TEST(Shuffle, InvertUndoesApply)
{
    Shuffler sh(true, 16, 4);
    for (std::int64_t step = 0; step < 12; ++step) {
        for (int lane = 0; lane < 16; ++lane) {
            EXPECT_EQ(sh.invert(step, sh.apply(step, lane)), lane);
            EXPECT_EQ(sh.apply(step, sh.invert(step, lane)), lane);
        }
    }
}

TEST(Shuffle, StaysWithinLocalGroup)
{
    // The paper limits the crossbar to 4x4 blocks: a lane never leaves
    // its group of 4 consecutive lanes.
    Shuffler sh(true, 16, 4);
    for (std::int64_t step = 0; step < 8; ++step)
        for (int lane = 0; lane < 16; ++lane)
            EXPECT_EQ(sh.apply(step, lane) / 4, lane / 4);
}

TEST(Shuffle, RotationVariesWithStep)
{
    Shuffler sh(true, 16, 4);
    // Within a period of 4 steps, lane 0 visits all 4 group positions.
    std::set<int> positions;
    for (std::int64_t step = 0; step < 4; ++step)
        positions.insert(sh.apply(step, 0));
    EXPECT_EQ(positions, (std::set<int>{0, 1, 2, 3}));
}

TEST(Shuffle, FullCrossbarUsesWholeWidth)
{
    Shuffler sh(true, 16, 16);
    std::set<int> positions;
    for (std::int64_t step = 0; step < 16; ++step)
        positions.insert(sh.apply(step, 0));
    EXPECT_EQ(positions.size(), 16u);
}

TEST(ShuffleDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(Shuffler(true, 16, 5), "must divide");
    EXPECT_DEATH(Shuffler(true, 0, 4), "positive");
    Shuffler sh(true, 16, 4);
    EXPECT_DEATH(sh.apply(0, 16), "out of");
    EXPECT_DEATH(sh.invert(0, -1), "out of");
}

} // namespace
} // namespace griffin
