/**
 * @file
 * Tests for the runtime/ subsystem: work-stealing pool semantics,
 * schedule-cache correctness, parallel-vs-serial determinism of the
 * experiment runner, and result-sink serialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/cache_store.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/schedule_cache.hh"
#include "runtime/thread_pool.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

// ---- thread pool ----------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    std::atomic<int> count{0};
    std::vector<std::atomic<int>> per_job(100);
    for (auto &p : per_job)
        p = 0;
    for (int i = 0; i < 100; ++i)
        pool.submit([&count, &per_job, i] {
            ++per_job[static_cast<std::size_t>(i)];
            ++count;
        });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
    for (const auto &p : per_job)
        EXPECT_EQ(p.load(), 1);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
        EXPECT_EQ(pool.pendingJobs(), 0u);
    }
}

TEST(ThreadPool, ShutdownDrainsPendingJobs)
{
    // Destroy the pool while most jobs are still queued: shutdown must
    // finish every submitted job, not drop the backlog.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++count;
            });
        // No wait(): the destructor races the backlog.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, StealsAcrossWorkers)
{
    // One worker's deque gets every long job (round-robin with exactly
    // one job per spin); with stealing, elapsed time is bounded well
    // below serial execution.  Smoke-level: just require all to finish
    // from a heavily imbalanced submit pattern.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&count] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ++count;
        });
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPoolDeathTest, ZeroThreadsIsFatal)
{
    EXPECT_EXIT(ThreadPool pool(0), testing::ExitedWithCode(exitUsageError),
                "at least 1 thread");
}

// ---- schedule cache -------------------------------------------------

/** Structural equality of two compressed streams. */
void
expectSameSchedule(const BSchedule &x, const BSchedule &y)
{
    ASSERT_EQ(x.cycles(), y.cycles());
    ASSERT_EQ(x.lanes(), y.lanes());
    ASSERT_EQ(x.cols(), y.cols());
    EXPECT_EQ(x.scheduledElems(), y.scheduledElems());
    EXPECT_EQ(x.stats().cycles, y.stats().cycles);
    EXPECT_EQ(x.stats().ops, y.stats().ops);
    EXPECT_EQ(x.stats().stolenOps, y.stats().stolenOps);
    for (std::int64_t cyc = 0; cyc < x.cycles(); ++cyc) {
        for (int lane = 0; lane < x.lanes(); ++lane) {
            for (int col = 0; col < x.cols(); ++col) {
                ASSERT_EQ(x.flatK(cyc, lane, col),
                          y.flatK(cyc, lane, col));
                ASSERT_EQ(x.homeCol(cyc, lane, col),
                          y.homeCol(cyc, lane, col));
            }
        }
    }
}

TEST(ScheduleCache, CachedEqualsFreshlyComputed)
{
    Rng rng(7);
    auto b = randomSparse(128, 16, 0.8, rng);
    TileShape shape;
    TileViewB vb(b, shape, 0);
    const Borrow db{4, 0, 1};
    Shuffler shuffler(true, shape.k0);

    ScheduleCache cache;
    auto cached = cache.obtain(vb, db, shuffler);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    const auto fresh = preprocessB(vb, db, shuffler, false);
    expectSameSchedule(*cached, fresh);
}

TEST(ScheduleCache, HitsOnIdenticalContentMissesOnDifferent)
{
    Rng rng(11);
    auto b1 = randomSparse(96, 16, 0.7, rng);
    auto b2 = b1; // same content, different object
    auto b3 = randomSparse(96, 16, 0.7, rng); // same shape, new draw
    TileShape shape;
    const Borrow db{2, 1, 0};
    Shuffler shuffler(false, shape.k0);

    ScheduleCache cache;
    auto s1 = cache.obtain(TileViewB(b1, shape, 0), db, shuffler);
    auto s2 = cache.obtain(TileViewB(b2, shape, 0), db, shuffler);
    EXPECT_EQ(s1.get(), s2.get()) << "identical content must share";
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.obtain(TileViewB(b3, shape, 0), db, shuffler);
    EXPECT_EQ(cache.stats().misses, 2u);

    // Same tile, different borrow window: a different schedule.
    cache.obtain(TileViewB(b1, shape, 0), Borrow{4, 1, 0}, shuffler);
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ScheduleCache, SharedEntriesSurviveClear)
{
    Rng rng(13);
    auto b = randomSparse(64, 16, 0.6, rng);
    TileShape shape;
    Shuffler shuffler(false, shape.k0);
    ScheduleCache cache;
    auto held = cache.obtain(TileViewB(b, shape, 0), Borrow{2, 0, 0},
                             shuffler);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_GT(held->cycles(), 0); // still alive through shared ownership
}

TEST(ScheduleCache, ByteBudgetEvictsFifo)
{
    Rng rng(19);
    std::vector<MatrixI8> tiles;
    for (int i = 0; i < 6; ++i) {
        Rng tile_rng = rng.fork();
        tiles.push_back(randomSparse(64, 16, 0.7, tile_rng));
    }
    TileShape shape;
    const Borrow db{2, 0, 0};
    Shuffler shuffler(false, shape.k0);

    // One shard so the FIFO covers every entry, budget sized to hold
    // roughly two schedules.
    ScheduleCache cache(1);
    auto first = cache.obtain(TileViewB(tiles[0], shape, 0), db,
                              shuffler);
    const auto entry_bytes = first->approxBytes();
    cache.setByteBudget(2 * entry_bytes + entry_bytes / 2);

    for (std::size_t i = 1; i < tiles.size(); ++i)
        cache.obtain(TileViewB(tiles[i], shape, 0), db, shuffler);

    const auto s = cache.stats();
    EXPECT_EQ(s.misses, tiles.size());
    EXPECT_GT(s.evictions, 0u);
    EXPECT_LT(s.entries, tiles.size());
    EXPECT_LE(s.residentBytes, 2 * entry_bytes + entry_bytes / 2);

    // The FIFO dropped the oldest tiles: re-requesting tile 0 is a
    // miss again, and its recomputed schedule matches a fresh pack.
    auto again = cache.obtain(TileViewB(tiles[0], shape, 0), db,
                              shuffler);
    EXPECT_EQ(cache.stats().misses, tiles.size() + 1);
    expectSameSchedule(
        *again,
        preprocessB(TileViewB(tiles[0], shape, 0), db, shuffler, false));

    // Evicted entries held by callers stay alive (shared ownership).
    EXPECT_GT(first->cycles(), 0);
}

TEST(ScheduleCache, ZeroBudgetIsUnbounded)
{
    Rng rng(23);
    ScheduleCache cache(1);
    TileShape shape;
    Shuffler shuffler(false, shape.k0);
    for (int i = 0; i < 4; ++i) {
        Rng tile_rng = rng.fork();
        auto tile = randomSparse(48, 16, 0.6, tile_rng);
        cache.obtain(TileViewB(tile, shape, 0), Borrow{2, 0, 0},
                     shuffler);
    }
    EXPECT_EQ(cache.stats().entries, 4u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

// ---- cache persistence ----------------------------------------------

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

TEST(CacheStore, SaveLoadRoundTripReproducesSchedules)
{
    Rng rng(29);
    std::vector<MatrixI8> tiles;
    for (int i = 0; i < 5; ++i) {
        Rng tile_rng = rng.fork();
        tiles.push_back(randomSparse(96, 16, 0.75, tile_rng));
    }
    TileShape shape;
    const Borrow db{4, 0, 1};
    Shuffler shuffler(true, shape.k0);

    ScheduleCache warm;
    for (const auto &tile : tiles)
        warm.obtain(TileViewB(tile, shape, 0), db, shuffler);
    ASSERT_EQ(warm.stats().entries, tiles.size());

    const auto path = tempPath("griffin_cache_roundtrip.grfc");
    EXPECT_EQ(saveCacheFile(path, warm), tiles.size());

    // A fresh cache restored from disk serves every tile without a
    // single preprocessB call, bit-identically to a fresh pack.
    ScheduleCache cold;
    EXPECT_EQ(loadCacheFile(path, cold), tiles.size());
    EXPECT_EQ(cold.stats().loadedEntries, tiles.size());
    for (const auto &tile : tiles) {
        auto restored = cold.obtain(TileViewB(tile, shape, 0), db,
                                    shuffler);
        expectSameSchedule(*restored,
                           preprocessB(TileViewB(tile, shape, 0), db,
                                       shuffler, false));
    }
    EXPECT_EQ(cold.stats().hits, tiles.size());
    EXPECT_EQ(cold.stats().loadHits, tiles.size());
    EXPECT_EQ(cold.stats().misses, 0u);

    // Re-saving the restored cache reproduces the file byte for byte
    // (entries are written sorted by key).
    const auto path2 = tempPath("griffin_cache_roundtrip2.grfc");
    EXPECT_EQ(saveCacheFile(path2, cold), tiles.size());
    std::ifstream f1(path, std::ios::binary);
    std::ifstream f2(path2, std::ios::binary);
    std::stringstream b1, b2;
    b1 << f1.rdbuf();
    b2 << f2.rdbuf();
    EXPECT_GT(b1.str().size(), 0u);
    EXPECT_EQ(b1.str(), b2.str());
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(CacheStore, MissingFileIsANormalFirstRun)
{
    ScheduleCache cache;
    EXPECT_EQ(loadCacheFile(tempPath("griffin_cache_nonexistent.grfc"),
                            cache),
              0u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheStore, BadMagicAndVersionAreIgnored)
{
    const auto path = tempPath("griffin_cache_bad.grfc");
    {
        std::ofstream os(path, std::ios::binary);
        os << "JUNKJUNKJUNK";
    }
    ScheduleCache cache;
    EXPECT_EQ(loadCacheFile(path, cache), 0u);

    {
        // Right magic, wrong version byte: whole-file invalidation.
        std::ofstream os(path, std::ios::binary);
        os << "GRFC" << '\x7f' << "rest";
    }
    EXPECT_EQ(loadCacheFile(path, cache), 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    std::remove(path.c_str());
}

TEST(CacheStore, TruncatedFileKeepsCleanPrefix)
{
    Rng rng(31);
    TileShape shape;
    Shuffler shuffler(false, shape.k0);
    ScheduleCache warm;
    for (int i = 0; i < 3; ++i) {
        Rng tile_rng = rng.fork();
        auto tile = randomSparse(64, 16, 0.7, tile_rng);
        warm.obtain(TileViewB(tile, shape, 0), Borrow{2, 0, 0},
                    shuffler);
    }
    const auto path = tempPath("griffin_cache_trunc.grfc");
    saveCacheFile(path, warm);

    // Chop the last bytes off the final entry.
    std::ifstream in(path, std::ios::binary);
    std::stringstream whole;
    whole << in.rdbuf();
    in.close();
    const auto bytes = whole.str();
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() - 16));
    }
    ScheduleCache cold;
    const auto loaded = loadCacheFile(path, cold);
    EXPECT_LT(loaded, 3u);
    EXPECT_EQ(cold.stats().entries, loaded);
    std::remove(path.c_str());
}

TEST(ScheduleCache, ConcurrentObtainIsConsistent)
{
    Rng rng(17);
    std::vector<MatrixI8> tiles;
    for (int i = 0; i < 8; ++i) {
        Rng tile_rng = rng.fork();
        tiles.push_back(randomSparse(64, 16, 0.75, tile_rng));
    }
    TileShape shape;
    const Borrow db{4, 0, 1};
    Shuffler shuffler(true, shape.k0);

    ScheduleCache cache;
    std::vector<std::shared_ptr<const BSchedule>> seen(64);
    {
        ThreadPool pool(4);
        for (std::size_t i = 0; i < seen.size(); ++i)
            pool.submit([&, i] {
                seen[i] = cache.obtain(
                    TileViewB(tiles[i % tiles.size()], shape, 0), db,
                    shuffler);
            });
        pool.wait();
    }
    // Every requester of one tile got a schedule equal to the serial
    // computation (racing double-computes are allowed, but the content
    // must match).
    for (std::size_t i = 0; i < seen.size(); ++i) {
        const auto fresh = preprocessB(
            TileViewB(tiles[i % tiles.size()], shape, 0), db, shuffler,
            false);
        expectSameSchedule(*seen[i], fresh);
    }
    EXPECT_EQ(cache.stats().entries, tiles.size());
}

// ---- runner ---------------------------------------------------------

SweepSpec
smallSweep()
{
    SweepSpec spec;
    spec.archs = {sparseBStar(), griffinArch()};
    spec.networks = {alexNet(), bertBase()};
    spec.categories = {DnnCategory::B, DnnCategory::AB};
    RunOptions fast;
    fast.sim.sampleFraction = 0.02;
    fast.sim.minSampledTiles = 2;
    fast.rowCap = 32;
    spec.optionVariants = {fast};
    return spec;
}

TEST(Runner, ExpansionMatchesSerialLoopOrder)
{
    auto spec = smallSweep();
    auto jobs = expandSweep(spec);
    ASSERT_EQ(jobs.size(), spec.jobCount());
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].archIndex, 0u);
    EXPECT_EQ(jobs[0].networkIndex, 0u);
    EXPECT_EQ(jobs[0].categoryIndex, 0u);
    EXPECT_EQ(jobs[1].categoryIndex, 1u);
    EXPECT_EQ(jobs[2].networkIndex, 1u);
    EXPECT_EQ(jobs[4].archIndex, 1u);
}

TEST(Runner, ExpansionOrderIsOptionsArchNetworkCategory)
{
    // The documented nesting order — (options, arch, network,
    // category), options outermost — is load-bearing: GridSpec maps
    // its RunOptions axes onto optionVariants assuming it, and the
    // bit-identity tests compare against serial loops written in it.
    auto spec = smallSweep();
    spec.optionVariants.push_back(spec.optionVariants[0]);
    spec.optionVariants[1].weightLaneBias = 0.9;
    spec.optionCoords = {{}, {{"weight_lane_bias", "0.9"}}};
    const auto jobs = expandSweep(spec);
    ASSERT_EQ(jobs.size(), 16u);
    std::size_t i = 0;
    for (std::size_t o = 0; o < 2; ++o) {
        for (std::size_t a = 0; a < 2; ++a) {
            for (std::size_t n = 0; n < 2; ++n) {
                for (std::size_t c = 0; c < 2; ++c, ++i) {
                    EXPECT_EQ(jobs[i].optionsIndex, o) << "job " << i;
                    EXPECT_EQ(jobs[i].archIndex, a) << "job " << i;
                    EXPECT_EQ(jobs[i].networkIndex, n) << "job " << i;
                    EXPECT_EQ(jobs[i].categoryIndex, c) << "job " << i;
                    EXPECT_EQ(jobs[i].coords, spec.optionCoords[o])
                        << "job " << i;
                }
            }
        }
    }
}

TEST(Runner, PerArchSeedDerivationIsPinned)
{
    // Pin the documented derivation — mixSeed(variant seed, arch name)
    // — so a runner or grid refactor cannot silently change which
    // tensors each architecture draws.
    auto spec = smallSweep();
    spec.perArchSeeds = true;
    const auto base_seed = spec.optionVariants[0].seed;
    for (const auto &job : expandSweep(spec))
        EXPECT_EQ(job.options.seed,
                  Rng::mixSeed(base_seed,
                               spec.archs[job.archIndex].name));
}

TEST(RunnerDeathTest, MismatchedOptionCoordsAreFatal)
{
    auto spec = smallSweep();
    spec.optionCoords = {{}, {}};
    EXPECT_EXIT(expandSweep(spec), testing::ExitedWithCode(exitUsageError),
                "axis-coordinate records");
}

TEST(Runner, ParallelIsBitIdenticalToSerial)
{
    auto spec = smallSweep();
    const auto serial = runSweep(spec, 1);
    const auto parallel = runSweep(spec, 4);
    ASSERT_EQ(serial.results().size(), parallel.results().size());

    // Numeric identity per job...
    for (std::size_t i = 0; i < serial.results().size(); ++i) {
        const auto &s = serial.results()[i];
        const auto &p = parallel.results()[i];
        EXPECT_EQ(s.network, p.network);
        EXPECT_EQ(s.arch, p.arch);
        EXPECT_EQ(s.totalCycles, p.totalCycles);
        EXPECT_EQ(s.denseCycles, p.denseCycles);
        EXPECT_EQ(s.speedup, p.speedup);
        EXPECT_EQ(s.topsPerWatt, p.topsPerWatt);
        ASSERT_EQ(s.layers.size(), p.layers.size());
        for (std::size_t l = 0; l < s.layers.size(); ++l)
            EXPECT_EQ(s.layers[l].totalCycles,
                      p.layers[l].totalCycles);
    }

    // ...and byte identity of the serialized documents.
    std::ostringstream ser, par;
    writeJson(ser, serial.results());
    writeJson(par, parallel.results());
    EXPECT_EQ(ser.str(), par.str());
}

TEST(Runner, LayerShardedIsBitIdenticalToSerialAcceleratorRun)
{
    // The acceptance bar for layer granularity: layer-sharded sweeps on
    // 1, 2, and 8 threads all reproduce the serial Accelerator::run
    // byte for byte.
    auto spec = smallSweep();
    spec.shardLayers = true;

    // Ground truth: the serial quadruple loop through run().
    std::vector<NetworkResult> serial;
    for (const auto &opt : spec.optionVariants)
        for (const auto &arch : spec.archs) {
            Accelerator acc(arch);
            for (const auto &net : spec.networks)
                for (const auto cat : spec.categories)
                    serial.push_back(acc.run(net, cat, opt));
        }
    std::ostringstream serial_doc;
    writeJson(serial_doc, serial);

    for (const int threads : {1, 2, 8}) {
        const auto sweep = runSweep(spec, threads);
        ASSERT_EQ(sweep.results().size(), serial.size()) << threads;
        std::ostringstream doc;
        writeJson(doc, sweep.results());
        EXPECT_EQ(doc.str(), serial_doc.str())
            << "layer-sharded sweep diverged on " << threads
            << " threads";
    }
}

TEST(Runner, LayerShardingMatchesNetworkGranularity)
{
    auto spec = smallSweep();
    const auto whole = runSweep(spec, 4);
    spec.shardLayers = true;
    const auto sharded = runSweep(spec, 4);
    std::ostringstream a, b;
    writeJson(a, whole.results());
    writeJson(b, sharded.results());
    EXPECT_EQ(a.str(), b.str());
}

TEST(Runner, BatchedArchsAreBitIdenticalToSerial)
{
    // The acceptance bar for batched multi-GEMM jobs: an arch-batched
    // sweep on 1, 2, and 8 threads reproduces the unbatched serial run
    // byte for byte, and the shared workset cache actually got reuse
    // across the arch axis (both archs share the tile height, so every
    // layer's workset generates once per (network, category)).
    auto spec = smallSweep();
    const auto serial = runSweep(spec, 1);
    std::ostringstream serial_doc;
    writeJson(serial_doc, serial.results());

    spec.batchArchs = true;
    for (const int threads : {1, 2, 8}) {
        const auto batched = runSweep(spec, threads);
        ASSERT_EQ(batched.results().size(), serial.results().size());
        std::ostringstream doc;
        writeJson(doc, batched.results());
        EXPECT_EQ(doc.str(), serial_doc.str())
            << "batched sweep diverged on " << threads << " threads";
        EXPECT_GT(batched.worksetStats().hits, 0u);
        // 2 archs x shared worksets: at most one generation per
        // (network, category, layer) key — fewer when categories
        // share a layer's effective sparsity pair.
        std::size_t layer_total = 0;
        for (const auto &net : spec.networks)
            layer_total += net.layerCount();
        EXPECT_LE(batched.worksetStats().misses,
                  layer_total * spec.categories.size());
    }
}

TEST(Runner, BatchedArchsComposeWithFleetShards)
{
    // Batching regroups jobs inside a shard only; the shard slices
    // still concatenate to the unsharded document.
    auto spec = smallSweep();
    spec.batchArchs = true;
    const auto whole = runSweep(spec, 4);
    std::vector<NetworkResult> stitched;
    spec.shardCount = 3;
    for (std::size_t s = 0; s < spec.shardCount; ++s) {
        spec.shardIndex = s;
        const auto shard = runSweep(spec, 2);
        stitched.insert(stitched.end(), shard.results().begin(),
                        shard.results().end());
    }
    std::ostringstream a, b;
    writeJson(a, whole.results());
    writeJson(b, stitched);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Runner, SharedWorksetCachePersistsAcrossSweeps)
{
    auto spec = smallSweep();
    WorksetCache worksets;
    const auto first = runSweep(spec, 2, nullptr, &worksets);
    const auto cold_misses = first.worksetStats().misses;
    EXPECT_GT(cold_misses, 0u);
    const auto second = runSweep(spec, 2, nullptr, &worksets);
    // Every generation of the second sweep is served by the first's.
    EXPECT_EQ(second.worksetStats().misses, cold_misses);
    std::ostringstream a, b;
    writeJson(a, first.results());
    writeJson(b, second.results());
    EXPECT_EQ(a.str(), b.str());
}

TEST(Runner, RunLayerIsOrderIndependent)
{
    // The per-layer entry point must not depend on which layers ran
    // before it: layer L simulated cold equals layer L simulated after
    // every other layer.
    auto spec = smallSweep();
    const auto &net = spec.networks[0];
    const auto &opt = spec.optionVariants[0];
    Accelerator acc(spec.archs[0]);

    const auto last_first = acc.runLayer(
        net, net.layerCount() - 1, DnnCategory::B, opt);
    std::vector<LayerResult> in_order;
    for (std::size_t l = 0; l < net.layerCount(); ++l)
        in_order.push_back(acc.runLayer(net, l, DnnCategory::B, opt));
    EXPECT_EQ(last_first.totalCycles, in_order.back().totalCycles);
    EXPECT_EQ(last_first.computeCycles, in_order.back().computeCycles);

    const auto reduced =
        acc.reduceLayers(net, DnnCategory::B, std::move(in_order));
    const auto direct = acc.run(net, DnnCategory::B, opt);
    EXPECT_EQ(reduced.totalCycles, direct.totalCycles);
    EXPECT_EQ(reduced.speedup, direct.speedup);
    EXPECT_EQ(reduced.topsPerWatt, direct.topsPerWatt);
}

TEST(Runner, CacheDoesNotChangeResults)
{
    auto spec = smallSweep();
    const auto sweep = runSweep(spec, 2);
    // Re-run one job directly with no cache attached.
    const auto &job = sweep.jobs()[3];
    Accelerator acc(spec.archs[job.archIndex]);
    const auto direct = acc.run(spec.networks[job.networkIndex],
                                spec.categories[job.categoryIndex],
                                job.options);
    EXPECT_EQ(direct.totalCycles, sweep.results()[3].totalCycles);
    EXPECT_EQ(direct.speedup, sweep.results()[3].speedup);
}

TEST(Runner, CollectTimingsProducesPerJobElapsed)
{
    auto spec = smallSweep();
    const auto plain = runSweep(spec, 2);
    EXPECT_TRUE(plain.jobElapsedMs().empty())
        << "timings are strictly opt-in";

    spec.collectTimings = true;
    const auto timed = runSweep(spec, 2);
    ASSERT_EQ(timed.jobElapsedMs().size(), timed.jobs().size());
    for (const double ms : timed.jobElapsedMs())
        EXPECT_GE(ms, 0.0);

    // Timing is pure observation: result rows must not move.
    ASSERT_EQ(timed.results().size(), plain.results().size());
    for (std::size_t i = 0; i < plain.results().size(); ++i) {
        EXPECT_EQ(timed.results()[i].totalCycles,
                  plain.results()[i].totalCycles);
        EXPECT_EQ(timed.results()[i].speedup,
                  plain.results()[i].speedup);
    }
}

TEST(Runner, PerArchSeedsDecoupleTensors)
{
    auto spec = smallSweep();
    spec.perArchSeeds = true;
    auto jobs = expandSweep(spec);
    EXPECT_NE(jobs[0].options.seed, jobs[4].options.seed)
        << "different archs must draw different seeds";
    EXPECT_EQ(jobs[0].options.seed, jobs[1].options.seed)
        << "same arch keeps one seed across categories";
}

TEST(RunnerDeathTest, EmptySpecIsFatal)
{
    SweepSpec spec;
    EXPECT_EXIT(expandSweep(spec), testing::ExitedWithCode(exitUsageError),
                "no architectures");
}

// ---- result sink ----------------------------------------------------

TEST(ResultSink, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(ResultSink, JsonNumberRoundTripsAndIsShort)
{
    EXPECT_EQ(jsonNumber(1.0), "1");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    const double awkward = 1.0 / 3.0;
    double back = 0.0;
    std::sscanf(jsonNumber(awkward).c_str(), "%lf", &back);
    EXPECT_EQ(back, awkward);
}

NetworkResult
tinyResult()
{
    NetworkResult r;
    r.network = "net";
    r.arch = "arch";
    r.category = DnnCategory::B;
    r.denseCycles = 100;
    r.totalCycles = 50;
    r.speedup = 2.0;
    LayerResult l;
    l.name = "l1";
    l.denseCycles = 100;
    l.computeCycles = 50;
    l.totalCycles = 50;
    l.macs = 1000;
    l.speedup = 2.0;
    r.layers.push_back(l);
    return r;
}

TEST(ResultSink, JsonDocumentShape)
{
    std::ostringstream os;
    const std::vector<NetworkResult> results{tinyResult()};
    writeJson(os, results);
    const auto doc = os.str();
    EXPECT_NE(doc.find("\"network\": \"net\""), std::string::npos);
    EXPECT_NE(doc.find("\"category\": \"DNN.B\""), std::string::npos);
    EXPECT_NE(doc.find("\"layers\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"speedup\": 2"), std::string::npos);
    EXPECT_EQ(doc.front(), '[');
    EXPECT_EQ(doc[doc.size() - 2], ']');
}

TEST(ResultSink, CsvHasLayerAndTotalRows)
{
    std::ostringstream os;
    writeCsv(os, {tinyResult()});
    const auto doc = os.str();
    EXPECT_NE(doc.find("net,arch,DNN.B,l1,100,50,0,50,1000,2\n"),
              std::string::npos);
    EXPECT_NE(doc.find("net,arch,DNN.B,total,100,,,50,,2\n"),
              std::string::npos);
}

SweepResult
tinyAnnotatedSweep()
{
    // A hand-assembled two-variant sweep (no simulation): enough to
    // exercise the annotated row serialization.
    SweepSpec spec;
    spec.archs = {sparseBStar()};
    spec.networks = {alexNet()};
    spec.categories = {DnnCategory::B};
    RunOptions lo, hi;
    lo.weightLaneBias = 0.25;
    hi.weightLaneBias = 0.75;
    spec.optionVariants = {lo, hi};
    spec.optionCoords = {{{"weight_lane_bias", "0.25"}},
                         {{"weight_lane_bias", "0.75"}}};
    auto jobs = expandSweep(spec);
    return SweepResult(std::move(jobs), {tinyResult(), tinyResult()},
                       ScheduleCache::Stats{});
}

TEST(ResultSink, SweepJsonRowsCarryOptionsAndCoords)
{
    std::ostringstream os;
    writeJson(os, tinyAnnotatedSweep());
    const auto doc = os.str();
    EXPECT_NE(doc.find("\"options\": {\"seed\": 1, \"row_cap\": 256, "
                       "\"weight_lane_bias\": 0.25, "
                       "\"act_run_length\": 2, "
                       "\"sample_fraction\": 1, "
                       "\"enforce_dram_bound\": false}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"coords\": {\"weight_lane_bias\": \"0.25\"}"),
              std::string::npos);
    EXPECT_NE(doc.find("\"coords\": {\"weight_lane_bias\": \"0.75\"}"),
              std::string::npos);
}

TEST(ResultSink, SweepCsvRowsCarryOptionsColumns)
{
    std::ostringstream os;
    writeCsv(os, tinyAnnotatedSweep());
    const auto doc = os.str();
    EXPECT_NE(doc.find("network,arch,category,seed,row_cap,"
                       "weight_lane_bias,act_run_length,"
                       "sample_fraction,enforce_dram_bound,layer,"),
              std::string::npos);
    EXPECT_NE(doc.find("net,arch,DNN.B,1,256,0.25,2,1,false,total,"),
              std::string::npos);
    EXPECT_NE(doc.find("net,arch,DNN.B,1,256,0.75,2,1,false,total,"),
              std::string::npos);
}

TEST(ResultSink, CsvQuotesCommaBearingFields)
{
    // Routing-spec arch names embed commas; RFC-4180 quoting must keep
    // them one column or every downstream column shifts.
    auto result = tinyResult();
    result.arch = "B(4,0,1,on)";
    result.layers[0].name = "conv \"a\",b";
    std::ostringstream os;
    writeCsv(os, {result});
    const auto doc = os.str();
    EXPECT_NE(doc.find("net,\"B(4,0,1,on)\",DNN.B,"
                       "\"conv \"\"a\"\",b\",100,50,0,50,1000,2\n"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("net,\"B(4,0,1,on)\",DNN.B,total,"),
              std::string::npos)
        << doc;

    // The annotated writer quotes the same way.
    ResultRow row;
    row.result = result;
    row.annotated = true;
    std::ostringstream os2;
    writeCsv(os2, std::vector<ResultRow>{row});
    EXPECT_NE(os2.str().find("net,\"B(4,0,1,on)\",DNN.B,1,256,"),
              std::string::npos)
        << os2.str();
}

TEST(ResultSink, JsonLinesIsOneCompactRowPerLineWithLabel)
{
    auto rows = sweepRows(tinyAnnotatedSweep(), "fig5");
    std::ostringstream os;
    writeJsonLines(os, rows);
    const auto doc = os.str();
    // One line per row, no enclosing array.
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '\n'), 2);
    EXPECT_EQ(doc.front(), '{');
    const auto first = doc.substr(0, doc.find('\n'));
    EXPECT_NE(first.find("\"experiment\": \"fig5\","), std::string::npos);
    EXPECT_NE(first.find("\"network\": \"net\","), std::string::npos);
    EXPECT_NE(first.find("\"coords\": {\"weight_lane_bias\": "
                         "\"0.25\"},"),
              std::string::npos);
    EXPECT_NE(first.find("\"layers\": [{"), std::string::npos);

    // Splitting a row list anywhere and concatenating the parts
    // reproduces the document — the property fleet sharding relies on.
    std::ostringstream part1, part2;
    writeJsonLines(part1, {rows[0]});
    writeJsonLines(part2, {rows[1]});
    EXPECT_EQ(part1.str() + part2.str(), doc);
}

TEST(ResultSink, ExperimentColumnOnlyWhenLabeled)
{
    auto labeled = sweepRows(tinyAnnotatedSweep(), "fig5");
    std::ostringstream os;
    writeCsv(os, labeled);
    EXPECT_EQ(os.str().rfind("experiment,network,arch,", 0), 0u);
    EXPECT_NE(os.str().find("fig5,net,arch,DNN.B,"), std::string::npos);

    auto unlabeled = sweepRows(tinyAnnotatedSweep());
    std::ostringstream os2;
    writeCsv(os2, unlabeled);
    EXPECT_EQ(os2.str().rfind("network,arch,", 0), 0u);
}

TEST(ResultSink, PlainRowsKeepTheLegacyShape)
{
    // Unannotated documents must not grow options/coords fields: the
    // NetworkResult overloads are the stable legacy format.
    std::ostringstream os;
    writeJson(os, std::vector<NetworkResult>{tinyResult()});
    EXPECT_EQ(os.str().find("\"options\""), std::string::npos);
    EXPECT_EQ(os.str().find("\"coords\""), std::string::npos);
}

SweepResult
tinyTimedSweep()
{
    // tinyAnnotatedSweep() plus per-job elapsed times, as runSweep
    // would produce under SweepSpec::collectTimings.
    SweepSpec spec;
    spec.archs = {sparseBStar()};
    spec.networks = {alexNet()};
    spec.categories = {DnnCategory::B};
    RunOptions lo, hi;
    lo.weightLaneBias = 0.25;
    hi.weightLaneBias = 0.75;
    spec.optionVariants = {lo, hi};
    spec.optionCoords = {{{"weight_lane_bias", "0.25"}},
                         {{"weight_lane_bias", "0.75"}}};
    auto jobs = expandSweep(spec);
    return SweepResult(std::move(jobs), {tinyResult(), tinyResult()},
                       ScheduleCache::Stats{}, WorksetCache::Stats{},
                       AScheduleCache::Stats{}, {1.5, 2.5});
}

TEST(ResultSink, TimedRowsEmitElapsedMs)
{
    std::ostringstream os;
    writeJsonLines(os, sweepRows(tinyTimedSweep()));
    const auto doc = os.str();
    EXPECT_NE(doc.find("\"elapsed_ms\": 1.5,"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"elapsed_ms\": 2.5,"), std::string::npos)
        << doc;

    // An untimed document must not grow the field: `--timings` off is
    // the byte-stable default.
    std::ostringstream os2;
    writeJsonLines(os2, sweepRows(tinyAnnotatedSweep()));
    EXPECT_EQ(os2.str().find("elapsed_ms"), std::string::npos);
}

TEST(ResultSink, TimedCsvGrowsTrailingElapsedColumn)
{
    std::ostringstream os;
    writeCsv(os, sweepRows(tinyTimedSweep()));
    const auto doc = os.str();
    // Header gains one trailing column...
    EXPECT_NE(doc.find(",macs,speedup,elapsed_ms\n"),
              std::string::npos)
        << doc;
    // ...total rows carry the value, layer rows leave the cell empty.
    EXPECT_NE(doc.find(",total,100,,,50,,2,1.5\n"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find(",total,100,,,50,,2,2.5\n"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find(",l1,100,50,0,50,1000,2,\n"), std::string::npos)
        << doc;

    // Untimed documents keep the legacy header byte-exactly.
    std::ostringstream os2;
    writeCsv(os2, sweepRows(tinyAnnotatedSweep()));
    EXPECT_NE(os2.str().find(",macs,speedup\n"), std::string::npos);
    EXPECT_EQ(os2.str().find("elapsed_ms"), std::string::npos);
}

TEST(ResultSink, TableJsonLineIsOneObjectPerLine)
{
    Table t("Title", {"a", "b"});
    t.addRow({"x", "1"});
    std::ostringstream os;
    writeTableJsonLine(os, t);
    EXPECT_EQ(os.str(), "{\"table\": \"Title\", \"columns\": [\"a\", "
                        "\"b\"], \"rows\": [[\"x\", \"1\"]]}\n");
}

} // namespace
} // namespace griffin
